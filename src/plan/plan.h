#ifndef INCDB_PLAN_PLAN_H_
#define INCDB_PLAN_PLAN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bitvector/bitvector.h"
#include "core/incomplete_index.h"
#include "core/query_api.h"
#include "core/snapshot.h"
#include "query/expr.h"
#include "query/query.h"

namespace incdb {
namespace plan {

/// Physical operators. A plan is a tree of these; the planner
/// (plan/planner.h) lowers a QueryRequest into one and the executor
/// (plan/plan_executor.h) runs it. Leaf operators produce a bitvector over
/// a row range; interior operators combine child bitvectors; the sink at
/// the root stitches the delta scan, strips deleted rows, and shapes the
/// final QueryResult.
enum class OpKind {
  /// Executes a (possibly multi-term) RangeQuery natively on one index.
  /// The probe's semantics field carries the *effective* semantics — the
  /// requested semantics flipped once per enclosing kNot — so a single
  /// component (possible or certain) is computed per leaf instead of the
  /// pair.
  kIndexProbe,
  /// Probes every unpruned sealed segment's own index (docs/SEGMENTS.md)
  /// with the node's RangeQuery and splices the local results into one
  /// bitvector over [0, end_row). One leaf task per unpruned segment —
  /// that is the morsel grid — with per-segment output slots merged in
  /// segment order, so serial and parallel runs are bit-identical. A
  /// zone-map-pruned segment provably contains no matching row for the
  /// leaf's effective semantics, so its zero bits are the exact leaf value
  /// (safe under enclosing kNot). Carries the same effective-semantics
  /// contract as kIndexProbe.
  kSegmentProbe,
  /// Row-oracle scan over the appended tail [begin_row, end_row) that the
  /// serving index does not cover. Always a direct child of the sink (a
  /// partial-range scan must never sit under a kNot).
  kDeltaScan,
  /// Row-oracle scan over the full visible range when no index wins the
  /// cost race (or none is registered).
  kSeqScanFallback,
  /// Intersection / union / complement of child outputs. kNot flips the
  /// component its child computes: possible(NOT e) = NOT certain(e).
  kAnd,
  kOr,
  kNot,
  /// Root sinks. kCountSink fills QueryResult::count only (and may collapse
  /// to the index's compressed ExecuteCount when the probe covers every
  /// visible row — `count_direct`); kMaterializeSink also fills row_ids.
  kCountSink,
  kMaterializeSink,
};

std::string_view OpKindToString(OpKind kind);

/// Filled in by the executor as the plan runs; EXPLAIN renders estimated
/// vs. realized selectivity from it.
struct OpRealized {
  bool executed = false;
  /// Set bits in this operator's output (== count for sinks).
  uint64_t output_rows = 0;
  /// Rows evaluated by scan operators (delta / fallback).
  uint64_t rows_scanned = 0;
  /// Parallel leaf tasks this operator was split into (0 = not a leaf).
  uint64_t morsels = 0;
  /// output_rows / rows in the operator's range.
  double realized_selectivity = 0.0;
  /// Cost counters attributed to exactly this operator.
  QueryStats stats;
};

/// One node of a physical plan. Which fields are meaningful depends on
/// `kind`; the rest stay defaulted. Nodes also hold their executor working
/// state (`output`, `realized`) — a plan instance is run once.
struct PlanNode {
  OpKind kind = OpKind::kSeqScanFallback;
  std::vector<std::unique_ptr<PlanNode>> children;

  // kIndexProbe
  const IncompleteIndex* index = nullptr;
  RangeQuery probe;
  /// kIndexProbe under a kCountSink: answer via ExecuteCount, never
  /// materializing the result bitvector.
  bool count_direct = false;

  // kSegmentProbe — probes `probe` on each segment; end_row is the sealed
  // watermark the node's output covers. count_direct sums per-segment
  // ExecuteCount under a kCountSink (same contract as the index probe).
  const internal::SegmentList* segments = nullptr;
  /// Planner's zone-map verdict per segment (1 = pruned, never probed).
  std::vector<uint8_t> segment_pruned;
  /// Executor working state: one local-row-space output per segment.
  std::vector<BitVector> segment_outputs;

  // kDeltaScan / kSeqScanFallback — exactly one predicate form is set.
  const Table* table = nullptr;
  uint64_t begin_row = 0;
  uint64_t end_row = 0;
  std::optional<QueryExpr> scan_expr;
  MissingSemantics scan_semantics = MissingSemantics::kMatch;
  RangeQuery scan_query;

  /// Planner's selectivity estimate for this operator's output (§5.3
  /// model); negative when no estimate is available (bare-index plans).
  double estimated_selectivity = -1.0;
  /// One-line operator description, e.g. "IndexProbe BEE-WAH [match] ...".
  std::string label;

  /// Executor working state.
  BitVector output;
  OpRealized realized;
};

/// A lowered, executable plan: the operator tree plus everything the sink
/// needs to shape a QueryResult.
struct PhysicalPlan {
  /// Root of the tree. Snapshot plans root at a sink (kCountSink /
  /// kMaterializeSink) whose child 0 is the main tree and optional child 1
  /// a kDeltaScan; bare-index plans (plan/planner.h PlanRangeOverIndex,
  /// PlanExprOverIndex) root directly at the operator tree.
  std::unique_ptr<PlanNode> root;
  RoutingDecision routing;
  MissingSemantics semantics = MissingSemantics::kMatch;
  bool count_only = false;
  /// Row-id materialization cap (QueryRequest::limit); 0 = unlimited.
  uint64_t limit = 0;
  /// Rows visible to the snapshot (the main tree output is resized to this
  /// before the delta is OR'd in).
  uint64_t visible_rows = 0;
  /// Expected size of the main tree's output — the serving index's build
  /// coverage (== visible_rows for scans).
  uint64_t covered_rows = 0;
  /// Deletion mask source; null for bare-index plans.
  const internal::SnapshotState* state = nullptr;
};

/// Renders the plan as an indented operator tree, one node per line:
///
///   MaterializeSink count=3 of 10 rows
///   ├─ IndexProbe BEE-WAH [match] 0 in [4,5] est_sel=0.31 sel=0.30 ...
///   └─ DeltaScan rows [8,10) [match] ... sel=0.50 scanned=2
///
/// Estimated selectivity comes from the planner, realized figures from the
/// executed nodes (unexecuted nodes render their estimates only), so the
/// output always reflects the plan that actually ran.
std::string ExplainPlan(const PhysicalPlan& plan);

}  // namespace plan
}  // namespace incdb

#endif  // INCDB_PLAN_PLAN_H_
