#ifndef INCDB_PLAN_PLANNER_H_
#define INCDB_PLAN_PLANNER_H_

#include "core/query_api.h"
#include "core/snapshot.h"
#include "plan/plan.h"
#include "query/expr.h"
#include "query/query.h"

namespace incdb {
namespace plan {

/// Picks the cheapest registered structure for a conjunctive range query
/// using the paper's cost guidance (§6) quantified per query: per-dimension
/// bitvector accesses for the bitmap family (equality pays the interval
/// width, range/interval encoding a constant 2), approximation-scan words
/// plus selectivity-scaled refinement for the VA-file, cell reads for the
/// scan. The estimated selectivity comes from query/selectivity.h with the
/// snapshot's actual per-attribute missing rates. Ties fall back to the
/// paper's preference order (equality first for point queries, range first
/// otherwise).
RoutingDecision RouteRangeQuery(const Snapshot& snapshot,
                                const RangeQuery& query);

/// Routing for a boolean expression: costs are summed over the expression's
/// leaf terms (the plan executor computes a single Kleene component per
/// leaf — the effective semantics after NOT parity — so a leaf costs the
/// same as a conjunctive term); the selectivity estimate combines term
/// probabilities through the expression structure.
RoutingDecision RouteExpression(const Snapshot& snapshot,
                                const QueryExpr& expr,
                                MissingSemantics semantics);

/// Lowers one request against a pinned snapshot into an executable
/// operator tree: resolves / parses / validates the predicate, routes by
/// predicted cost, and emits sink + index probes (or the scan fallback) +
/// the delta scan for rows the serving index does not cover. Every
/// QueryRequest shape — terms, expression, text, either semantics,
/// count-only or materializing, serial or parallel — lowers through here.
Result<PhysicalPlan> PlanRequest(const Snapshot& snapshot,
                                 const QueryRequest& request);

/// Bare-index planning (no snapshot, no sink): lowers a conjunctive range
/// query into the probe tree the workload executor runs. The plan's root is
/// the operator tree itself; execute with ExecutePlanToBitVector.
Result<PhysicalPlan> PlanRangeOverIndex(const IncompleteIndex& index,
                                        const RangeQuery& query);

/// Bare-index planning for a boolean expression: lowers AND/OR/NOT
/// structure onto single-component index probes (effective semantics per
/// leaf), collapsing pure conjunctions of distinct attributes into fused
/// native probes. ExecuteExpr is a thin caller of this.
Result<PhysicalPlan> PlanExprOverIndex(const IncompleteIndex& index,
                                       const QueryExpr& expr,
                                       MissingSemantics semantics);

/// Plans and executes one request against a pinned snapshot, packaging the
/// answer with routing decision, per-operator stats rolled up into
/// QueryResult::stats, snapshot identity, and (when the request asked for
/// it) the EXPLAIN rendering of the executed tree. This is the one
/// execution path under Database::Run, RunBatch, and the CLI.
Result<QueryResult> RunOnSnapshot(const Snapshot& snapshot,
                                  const QueryRequest& request);

}  // namespace plan

// The planner entry points predate the plan layer and are used throughout
// tests/examples as incdb:: names; keep them reachable there.
using plan::RouteExpression;
using plan::RouteRangeQuery;
using plan::RunOnSnapshot;

}  // namespace incdb

#endif  // INCDB_PLAN_PLANNER_H_
