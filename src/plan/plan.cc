#include "plan/plan.h"

#include <cstdio>

namespace incdb {
namespace plan {

std::string_view OpKindToString(OpKind kind) {
  switch (kind) {
    case OpKind::kIndexProbe:
      return "IndexProbe";
    case OpKind::kSegmentProbe:
      return "SegmentProbe";
    case OpKind::kDeltaScan:
      return "DeltaScan";
    case OpKind::kSeqScanFallback:
      return "SeqScan";
    case OpKind::kAnd:
      return "And";
    case OpKind::kOr:
      return "Or";
    case OpKind::kNot:
      return "Not";
    case OpKind::kCountSink:
      return "CountSink";
    case OpKind::kMaterializeSink:
      return "MaterializeSink";
  }
  return "Unknown";
}

namespace {

std::string FormatFraction(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  return buffer;
}

void AppendCounters(const QueryStats& stats, std::string* out) {
  const auto add = [out](const char* name, uint64_t value) {
    if (value == 0) return;
    *out += ' ';
    *out += name;
    *out += '=';
    *out += std::to_string(value);
  };
  add("bv", stats.bitvectors_accessed);
  add("ops", stats.bitvector_ops);
  add("words", stats.words_touched);
  add("scanned", stats.rows_scanned);
  add("cand", stats.candidates);
  add("fp", stats.false_positives);
  add("nodes", stats.nodes_accessed);
  add("subq", stats.subqueries);
  add("simd", stats.simd_path);
  add("decoded", stats.words_decoded);
  add("segs", stats.segments_scanned);
  add("pruned", stats.segments_pruned);
  add("axes", stats.probe_components);
  add("levels", stats.probe_levels);
}

void RenderNode(const PlanNode& node, const std::string& prefix, bool is_last,
                bool is_root, std::string* out) {
  if (!is_root) {
    *out += prefix;
    *out += is_last ? "└─ " : "├─ ";
  }
  *out += node.label.empty() ? std::string(OpKindToString(node.kind))
                             : node.label;
  if (node.estimated_selectivity >= 0.0) {
    *out += " est_sel=" + FormatFraction(node.estimated_selectivity);
  }
  if (node.realized.executed) {
    *out += " sel=" + FormatFraction(node.realized.realized_selectivity);
    *out += " rows=" + std::to_string(node.realized.output_rows);
    if (node.realized.morsels > 1) {
      *out += " morsels=" + std::to_string(node.realized.morsels);
    }
    AppendCounters(node.realized.stats, out);
  } else {
    *out += " (not executed)";
  }
  *out += '\n';
  const std::string child_prefix =
      is_root ? "" : prefix + (is_last ? "   " : "│  ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    RenderNode(*node.children[i], child_prefix, i + 1 == node.children.size(),
               /*is_root=*/false, out);
  }
}

}  // namespace

std::string ExplainPlan(const PhysicalPlan& plan) {
  std::string out;
  if (plan.root == nullptr) return out;
  RenderNode(*plan.root, "", /*is_last=*/true, /*is_root=*/true, &out);
  return out;
}

}  // namespace plan
}  // namespace incdb
