#include "plan/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bitmap/slicer.h"
#include "plan/plan_executor.h"
#include "query/parser.h"
#include "query/selectivity.h"
#include "simd/simd.h"

namespace incdb {
namespace plan {

namespace {

// Tie-break order per query shape (paper §6: BEE optimal for point
// queries; BRE typically best for range queries; BIE next — two bitmaps
// per dimension at half BEE's storage; VA-file the fallback index). The
// cost model below reproduces this ordering on its own for the common
// cases; the preference list only decides exact cost ties (e.g. BRE vs
// BIE, both a constant two bitvectors per dimension).
const IndexKind kPointPreference[] = {
    IndexKind::kBitmapEquality,  IndexKind::kBitmapRange,
    IndexKind::kBitmapInterval,  IndexKind::kBitmapBitSliced,
    IndexKind::kBitmapMultiComponent, IndexKind::kBitmapHierarchical,
    IndexKind::kVaFile,          IndexKind::kVaPlusFile,
    IndexKind::kMosaic,          IndexKind::kBitstringAugmented,
    IndexKind::kSequentialScan};
const IndexKind kRangePreference[] = {
    IndexKind::kBitmapRange,     IndexKind::kBitmapInterval,
    IndexKind::kBitmapHierarchical, IndexKind::kBitmapMultiComponent,
    IndexKind::kBitmapEquality,  IndexKind::kBitmapBitSliced,
    IndexKind::kVaFile,          IndexKind::kVaPlusFile,
    IndexKind::kMosaic,          IndexKind::kBitstringAugmented,
    IndexKind::kSequentialScan};

int PreferenceRank(IndexKind kind, bool is_point) {
  const auto& preference = is_point ? kPointPreference : kRangePreference;
  int rank = 0;
  for (IndexKind candidate : preference) {
    if (candidate == kind) return rank;
    ++rank;
  }
  return rank;
}

double Log2Ceil(uint32_t cardinality) {
  return std::ceil(std::log2(static_cast<double>(std::max(2u, cardinality))));
}

/// Effective per-word cost of the fused bitmap kernels relative to the
/// scalar dispatch level (which still runs the hybrid dense-block engine,
/// so these capture only the vector-width gain). The constants are the
/// geometric-mean time ratios vs the scalar level over the full
/// bench_simd_kernels matrix — density x k x word width x kernel (see
/// docs/KERNELS.md; sparse cells never touch the kernels, which is why the
/// all-matrix means sit well above the ~0.3 dense-only ratios). They scale
/// every bitmap kind equally — bitmap-vs-bitmap ranking is untouched — but
/// shift the crossover against the row-oracle scans, whose per-cell cost
/// the wider kernels do not change.
double SimdWordCostFactor() {
  switch (simd::ActiveLevel()) {
    case simd::Level::kAvx2:
      return 0.79;
    case simd::Level::kSse2:
      return 0.83;
    case simd::Level::kScalar:
      return 1.0;
  }
  return 1.0;
}

/// Estimated equality-encoded bitvector accesses for a slot interval of
/// `width` over an axis of `slots`: the evaluator reads the smaller of the
/// inside/outside sides (Fig. 2), plus one for B_0 / the complement pass.
double EqualityProbes(double width, double slots) {
  return std::min(width, slots - width) + 1.0;
}

/// Exact bitmaps-touched count of the multi-component probe tree
/// (composite_index.cc EvalMixedRadix), computed arithmetically from the
/// slicer's component structure — no dependence on C itself.
double MixedRadixProbes(const Slicer& slicer, size_t axis, uint64_t lo,
                        uint64_t hi) {
  const double slots = static_cast<double>(slicer.num_slots(axis));
  if (axis == 0) {
    return EqualityProbes(static_cast<double>(hi - lo + 1), slots);
  }
  const uint64_t div = slicer.axes()[axis].divisor;
  uint64_t d_lo = lo / div;
  uint64_t d_hi = hi / div;
  const uint64_t rem_lo = lo % div;
  const uint64_t rem_hi = hi % div;
  if (d_lo == d_hi) {
    return 1.0 + MixedRadixProbes(slicer, axis - 1, rem_lo, rem_hi);
  }
  double probes = 0.0;
  if (rem_lo != 0) {
    probes += 1.0 + MixedRadixProbes(slicer, axis - 1, rem_lo, div - 1);
    ++d_lo;
  }
  if (rem_hi != div - 1) {
    probes += 1.0 + MixedRadixProbes(slicer, axis - 1, 0, rem_hi);
    --d_hi;
  }
  if (d_lo <= d_hi) {
    probes += EqualityProbes(static_cast<double>(d_hi - d_lo + 1), slots);
  }
  return probes;
}

/// Exact bin count of the hierarchical segment-tree cover (<= 2 per level),
/// derived from the level structure alone.
double HierarchicalProbes(uint64_t lo, uint64_t hi) {
  double probes = 0.0;
  while (true) {
    if (lo > hi) break;
    if (lo == hi) {
      probes += 1.0;
      break;
    }
    if ((lo & 1) != 0) {
      probes += 1.0;
      ++lo;
    }
    if ((hi & 1) == 0) {
      probes += 1.0;
      --hi;
    }
    if (lo > hi) break;
    lo >>= 1;
    hi >>= 1;
  }
  return probes;
}

/// Predicted words touched when `kind` serves one conjunctive term list.
/// Bitmap kinds pay (bitvector accesses) x (words per full bitvector); the
/// VA-file pays the packed approximation scan plus selectivity-scaled exact
/// refinement; the scan pays one cell read per row per dimension. The
/// tree-based baselines are modeled as constant fractions of the scan: good
/// enough to rank them between the VA-file and no index at all, which is
/// where the paper's measurements put them.
double KindCost(const internal::SnapshotState& state, IndexKind kind,
                const std::vector<QueryTerm>& terms,
                MissingSemantics semantics, double estimated_selectivity) {
  const Schema& schema = state.table->schema();
  const double n = static_cast<double>(state.num_rows);
  const double bitvector_words = n / 31.0 * SimdWordCostFactor();
  // Under missing-is-match every dimension also reads the missing bitmap.
  const double missing_extra =
      semantics == MissingSemantics::kMatch ? 1.0 : 0.0;
  const double dims = static_cast<double>(std::max<size_t>(1, terms.size()));
  const double scan_cost = 0.5 * n * dims;
  switch (kind) {
    case IndexKind::kBitmapEquality: {
      double accesses = 0.0;
      for (const QueryTerm& term : terms) {
        accesses += static_cast<double>(term.interval.Width()) + missing_extra;
      }
      return accesses * bitvector_words;
    }
    case IndexKind::kBitmapRange: {
      double accesses = 0.0;
      for (const QueryTerm& term : terms) {
        const uint32_t cardinality =
            schema.attribute(term.attribute).cardinality;
        const bool one_sided =
            term.interval.lo == 1 ||
            term.interval.hi == static_cast<Value>(cardinality);
        accesses += (one_sided ? 1.0 : 2.0) + missing_extra;
      }
      return accesses * bitvector_words;
    }
    case IndexKind::kBitmapInterval:
      return (2.0 + missing_extra) * dims * bitvector_words;
    case IndexKind::kBitmapBitSliced: {
      double accesses = 0.0;
      for (const QueryTerm& term : terms) {
        accesses +=
            Log2Ceil(schema.attribute(term.attribute).cardinality) + 1.0;
      }
      return accesses * bitvector_words;
    }
    case IndexKind::kBitmapMultiComponent: {
      double accesses = 0.0;
      for (const QueryTerm& term : terms) {
        const uint32_t cardinality =
            schema.attribute(term.attribute).cardinality;
        if (term.interval.lo == 1 &&
            term.interval.hi == static_cast<Value>(cardinality)) {
          accesses += missing_extra;
          continue;
        }
        Result<Slicer> slicer =
            Slicer::Create(SlotScheme::kMultiComponent, cardinality);
        if (!slicer.ok()) {
          accesses += static_cast<double>(term.interval.Width());
          continue;
        }
        accesses += MixedRadixProbes(
                        slicer.value(), slicer.value().num_axes() - 1,
                        static_cast<uint64_t>(term.interval.lo) - 1,
                        static_cast<uint64_t>(term.interval.hi) - 1) +
                    missing_extra;
      }
      return accesses * bitvector_words;
    }
    case IndexKind::kBitmapHierarchical: {
      double accesses = 0.0;
      for (const QueryTerm& term : terms) {
        const uint32_t cardinality =
            schema.attribute(term.attribute).cardinality;
        if (term.interval.lo == 1 &&
            term.interval.hi == static_cast<Value>(cardinality)) {
          accesses += missing_extra;
          continue;
        }
        accesses += HierarchicalProbes(
                        static_cast<uint64_t>(term.interval.lo) - 1,
                        static_cast<uint64_t>(term.interval.hi) - 1) +
                    missing_extra;
      }
      return accesses * bitvector_words;
    }
    case IndexKind::kVaFile:
    case IndexKind::kVaPlusFile: {
      double bits = 0.0;
      for (const QueryTerm& term : terms) {
        bits += Log2Ceil(schema.attribute(term.attribute).cardinality) + 1.0;
      }
      return n * bits / 64.0 + estimated_selectivity * scan_cost;
    }
    case IndexKind::kMosaic:
      return 0.40 * scan_cost;
    case IndexKind::kBitstringAugmented:
      return 0.45 * scan_cost;
    case IndexKind::kSequentialScan:
      return scan_cost;
  }
  return scan_cost;
}

bool TermsArePoint(const std::vector<QueryTerm>& terms) {
  for (const QueryTerm& term : terms) {
    if (!term.interval.IsPoint()) return false;
  }
  return true;
}

/// Predicted global selectivity of a conjunctive term list (paper §5.3),
/// using the snapshot's actual per-attribute missing rates.
double TermsSelectivity(const internal::SnapshotState& state,
                        const std::vector<QueryTerm>& terms,
                        MissingSemantics semantics) {
  const Schema& schema = state.table->schema();
  double selectivity = 1.0;
  for (const QueryTerm& term : terms) {
    const uint32_t cardinality = schema.attribute(term.attribute).cardinality;
    const double attribute_selectivity =
        static_cast<double>(term.interval.Width()) /
        static_cast<double>(cardinality);
    const double missing_rate =
        state.num_rows == 0
            ? 0.0
            : static_cast<double>(state.missing_counts[term.attribute]) /
                  static_cast<double>(state.num_rows);
    selectivity *=
        TermMatchProbability(attribute_selectivity, missing_rate, semantics);
  }
  return selectivity;
}

/// Kleene-structure estimate for a boolean expression: terms via the §5.3
/// model, AND multiplies, OR complements-and-multiplies, NOT approximated
/// as the complement (exact only for two-valued rows).
double ExprSelectivity(const internal::SnapshotState& state,
                       const QueryExpr& expr, MissingSemantics semantics) {
  switch (expr.kind()) {
    case QueryExpr::Kind::kTerm: {
      const std::vector<QueryTerm> term = {{expr.attribute(), expr.interval()}};
      return TermsSelectivity(state, term, semantics);
    }
    case QueryExpr::Kind::kAnd: {
      double p = 1.0;
      for (const QueryExpr& child : expr.children()) {
        p *= ExprSelectivity(state, child, semantics);
      }
      return p;
    }
    case QueryExpr::Kind::kOr: {
      double q = 1.0;
      for (const QueryExpr& child : expr.children()) {
        q *= 1.0 - ExprSelectivity(state, child, semantics);
      }
      return 1.0 - q;
    }
    case QueryExpr::Kind::kNot:
      return 1.0 - ExprSelectivity(state, expr.children().front(), semantics);
  }
  return 1.0;
}

void CollectLeafTerms(const QueryExpr& expr, std::vector<QueryTerm>* out) {
  if (expr.kind() == QueryExpr::Kind::kTerm) {
    out->push_back({expr.attribute(), expr.interval()});
    return;
  }
  for (const QueryExpr& child : expr.children()) {
    CollectLeafTerms(child, out);
  }
}

struct Pick {
  const internal::SnapshotIndexEntry* entry = nullptr;  // null = scan
  RoutingDecision decision;
};

/// Ranks every registered index plus the scan by (predicted cost,
/// preference rank) and returns the winner. Expressions cost the same per
/// leaf as conjunctive terms: the plan executor computes one Kleene
/// component per leaf (the effective semantics after NOT parity), never the
/// (possible, certain) pair.
Pick PickPlan(const internal::SnapshotState& state,
              const std::vector<QueryTerm>& terms,
              MissingSemantics semantics, double estimated_selectivity) {
  const bool is_point = TermsArePoint(terms);
  Pick best;
  best.decision.index_kind = IndexKind::kSequentialScan;
  best.decision.index_name = "SeqScan";
  best.decision.is_point_query = is_point;
  best.decision.estimated_selectivity = estimated_selectivity;
  best.decision.estimated_cost = KindCost(
      state, IndexKind::kSequentialScan, terms, semantics,
      estimated_selectivity);
  int best_rank = PreferenceRank(IndexKind::kSequentialScan, is_point);
  for (const internal::SnapshotIndexEntry& entry : *state.indexes) {
    const double cost =
        KindCost(state, entry.kind, terms, semantics, estimated_selectivity);
    const int rank = PreferenceRank(entry.kind, is_point);
    if (cost < best.decision.estimated_cost ||
        (cost == best.decision.estimated_cost && rank < best_rank)) {
      best.entry = &entry;
      best.decision.index_kind = entry.kind;
      best.decision.index_name = entry.index->Name();
      best.decision.estimated_cost = cost;
      best_rank = rank;
    }
  }
  return best;
}

Pick PickForRangeQuery(const internal::SnapshotState& state,
                       const RangeQuery& query) {
  return PickPlan(state, query.terms, query.semantics,
                  TermsSelectivity(state, query.terms, query.semantics));
}

Pick PickForExpression(const internal::SnapshotState& state,
                       const QueryExpr& expr, MissingSemantics semantics) {
  std::vector<QueryTerm> leaves;
  CollectLeafTerms(expr, &leaves);
  return PickPlan(state, leaves, semantics,
                  ExprSelectivity(state, expr, semantics));
}

MissingSemantics FlipSemantics(MissingSemantics semantics) {
  return semantics == MissingSemantics::kMatch ? MissingSemantics::kNoMatch
                                               : MissingSemantics::kMatch;
}

/// A fused multi-term probe under either Kleene component equals the AND of
/// its single-term probes, so a conjunction of terms over distinct
/// attributes can collapse into one native index execution.
bool IsPureConjunction(const QueryExpr& expr, std::vector<QueryTerm>* terms) {
  if (expr.kind() == QueryExpr::Kind::kTerm) {
    terms->push_back({expr.attribute(), expr.interval()});
    return true;
  }
  if (expr.kind() != QueryExpr::Kind::kAnd) return false;
  for (const QueryExpr& child : expr.children()) {
    if (child.kind() != QueryExpr::Kind::kTerm) return false;
    terms->push_back({child.attribute(), child.interval()});
  }
  for (size_t i = 0; i < terms->size(); ++i) {
    for (size_t j = i + 1; j < terms->size(); ++j) {
      if ((*terms)[i].attribute == (*terms)[j].attribute) return false;
    }
  }
  return !terms->empty();
}

std::unique_ptr<PlanNode> MakeProbe(const internal::SnapshotState* state,
                                    const IncompleteIndex& index,
                                    RangeQuery query) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kIndexProbe;
  node->index = &index;
  node->probe = std::move(query);
  if (state != nullptr) {
    node->estimated_selectivity =
        TermsSelectivity(*state, node->probe.terms, node->probe.semantics);
  }
  node->label = "IndexProbe " + index.Name() + " " + node->probe.ToString();
  return node;
}

/// Leaf over the segmented store: one kSegmentProbe covering the sealed
/// prefix [0, sealed_rows), with each segment's zone map consulted here at
/// plan time. A pruned segment provably holds no row matching the probe's
/// effective semantics, so the executor never touches it and its zero bits
/// stand in for the exact leaf value.
std::unique_ptr<PlanNode> MakeSegmentProbe(
    const internal::SnapshotState* state,
    const internal::SegmentList& segments, RangeQuery query) {
  auto node = std::make_unique<PlanNode>();
  node->kind = OpKind::kSegmentProbe;
  node->segments = &segments;
  node->probe = std::move(query);
  node->end_row = segments.sealed_rows;
  node->segment_pruned.reserve(segments.segments.size());
  uint64_t pruned = 0;
  for (const auto& segment : segments.segments) {
    const bool skip = internal::SegmentPrunedByZones(*segment, node->probe);
    node->segment_pruned.push_back(skip ? 1 : 0);
    if (skip) ++pruned;
  }
  if (state != nullptr) {
    node->estimated_selectivity =
        TermsSelectivity(*state, node->probe.terms, node->probe.semantics);
  }
  node->label = "SegmentProbe " + segments.segments.front()->index->Name() +
                " " + node->probe.ToString() + " segs=" +
                std::to_string(segments.segments.size() - pruned) + "/" +
                std::to_string(segments.segments.size());
  return node;
}

/// Fraction of segments the probe will actually touch — scales the
/// routing cost estimate so EXPLAIN reflects zone-map savings.
double UnprunedFraction(const PlanNode& probe) {
  if (probe.segment_pruned.empty()) return 1.0;
  uint64_t unpruned = 0;
  for (const uint8_t skip : probe.segment_pruned) {
    if (!skip) ++unpruned;
  }
  return static_cast<double>(unpruned) /
         static_cast<double>(probe.segment_pruned.size());
}

std::unique_ptr<PlanNode> MakeTermsScan(const internal::SnapshotState* state,
                                        OpKind kind, const Table& table,
                                        uint64_t begin, uint64_t end,
                                        RangeQuery query) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->table = &table;
  node->begin_row = begin;
  node->end_row = end;
  node->scan_query = std::move(query);
  if (state != nullptr) {
    node->estimated_selectivity = TermsSelectivity(
        *state, node->scan_query.terms, node->scan_query.semantics);
  }
  node->label = std::string(OpKindToString(kind)) + " rows [" +
                std::to_string(begin) + "," + std::to_string(end) + ") " +
                node->scan_query.ToString();
  return node;
}

std::unique_ptr<PlanNode> MakeExprScan(const internal::SnapshotState* state,
                                       OpKind kind, const Table& table,
                                       uint64_t begin, uint64_t end,
                                       const QueryExpr& expr,
                                       MissingSemantics semantics) {
  auto node = std::make_unique<PlanNode>();
  node->kind = kind;
  node->table = &table;
  node->begin_row = begin;
  node->end_row = end;
  node->scan_expr = expr;
  node->scan_semantics = semantics;
  if (state != nullptr) {
    node->estimated_selectivity = ExprSelectivity(*state, expr, semantics);
  }
  node->label = std::string(OpKindToString(kind)) + " rows [" +
                std::to_string(begin) + "," + std::to_string(end) + ") [" +
                std::string(MissingSemanticsToString(semantics)) + "] " +
                expr.ToString();
  return node;
}

/// Builds one leaf node for a RangeQuery whose semantics field already
/// carries the effective semantics. LowerExpr is agnostic to the leaf
/// shape: the registry path plugs in MakeProbe, the segmented path
/// MakeSegmentProbe.
using LeafFactory = std::function<std::unique_ptr<PlanNode>(RangeQuery)>;

/// Lowers a boolean expression onto index probes, computing the single
/// Kleene component `effective` asks for: kTerm probes under the effective
/// semantics, kAnd/kOr combine children under the same component, kNot
/// flips the component its child computes and complements the result
/// (possible(NOT e) = NOT certain(e) and vice versa). With
/// `split_conjunctions`, conjunctions stay And-of-probes so the executor
/// can evaluate the probes concurrently; otherwise pure conjunctions of
/// distinct attributes collapse into one fused native probe.
Result<std::unique_ptr<PlanNode>> LowerExpr(
    const LeafFactory& make_leaf, const QueryExpr& expr,
    MissingSemantics effective, bool split_conjunctions) {
  std::vector<QueryTerm> conjunction;
  if (!split_conjunctions && IsPureConjunction(expr, &conjunction)) {
    RangeQuery query;
    query.terms = std::move(conjunction);
    query.semantics = effective;
    return make_leaf(std::move(query));
  }
  switch (expr.kind()) {
    case QueryExpr::Kind::kTerm: {
      RangeQuery query;
      query.terms = {{expr.attribute(), expr.interval()}};
      query.semantics = effective;
      return make_leaf(std::move(query));
    }
    case QueryExpr::Kind::kAnd:
    case QueryExpr::Kind::kOr: {
      if (expr.children().empty()) {
        return Status::InvalidArgument("AND/OR must have children");
      }
      auto node = std::make_unique<PlanNode>();
      const bool is_and = expr.kind() == QueryExpr::Kind::kAnd;
      node->kind = is_and ? OpKind::kAnd : OpKind::kOr;
      double p = 1.0;
      bool have_estimate = true;
      for (const QueryExpr& child : expr.children()) {
        INCDB_ASSIGN_OR_RETURN(
            std::unique_ptr<PlanNode> lowered,
            LowerExpr(make_leaf, child, effective, split_conjunctions));
        const double child_p = lowered->estimated_selectivity;
        if (child_p < 0.0) have_estimate = false;
        p *= is_and ? child_p : 1.0 - child_p;
        node->children.push_back(std::move(lowered));
      }
      if (have_estimate) node->estimated_selectivity = is_and ? p : 1.0 - p;
      node->label = OpKindToString(node->kind);
      return node;
    }
    case QueryExpr::Kind::kNot: {
      auto node = std::make_unique<PlanNode>();
      node->kind = OpKind::kNot;
      INCDB_ASSIGN_OR_RETURN(
          std::unique_ptr<PlanNode> child,
          LowerExpr(make_leaf, expr.children().front(),
                    FlipSemantics(effective), split_conjunctions));
      if (child->estimated_selectivity >= 0.0) {
        node->estimated_selectivity = 1.0 - child->estimated_selectivity;
      }
      node->label = "Not";
      node->children.push_back(std::move(child));
      return node;
    }
  }
  return Status::Internal("unknown expression kind");
}

std::unique_ptr<PlanNode> MakeSink(const QueryRequest& request,
                                   const Pick& picked) {
  auto sink = std::make_unique<PlanNode>();
  sink->kind =
      request.count_only ? OpKind::kCountSink : OpKind::kMaterializeSink;
  sink->estimated_selectivity = picked.decision.estimated_selectivity;
  sink->label = OpKindToString(sink->kind);
  return sink;
}

}  // namespace

RoutingDecision RouteRangeQuery(const Snapshot& snapshot,
                                const RangeQuery& query) {
  return PickForRangeQuery(snapshot.state(), query).decision;
}

RoutingDecision RouteExpression(const Snapshot& snapshot,
                                const QueryExpr& expr,
                                MissingSemantics semantics) {
  return PickForExpression(snapshot.state(), expr, semantics).decision;
}

Result<PhysicalPlan> PlanRequest(const Snapshot& snapshot,
                                 const QueryRequest& request) {
  if (!snapshot.valid()) {
    return Status::InvalidArgument("invalid (default-constructed) snapshot");
  }
  // The request-level contract (non-empty predicate, ordered intervals, no
  // conflicting flags) is checked here for every in-process caller; the
  // serving daemon additionally checks it at wire decode so a malformed
  // request never even reaches the planner's queue slot.
  INCDB_RETURN_IF_ERROR(request.Validate());
  const internal::SnapshotState& state = snapshot.state();
  const Table& table = *state.table;
  // Any parallelism degree other than "exactly one thread" makes the
  // planner keep conjunctions split so leaf probes can run concurrently.
  const bool parallel = request.parallelism != 1;
  // A segmented store replaces registry routing outright: every sealed
  // segment carries its own index, so the per-segment grid is both the
  // access path and the parallel morsel grid (no And-split needed).
  const bool segmented =
      state.segments != nullptr && !state.segments->segments.empty();

  PhysicalPlan plan;
  plan.state = &state;
  plan.semantics = request.semantics;
  plan.count_only = request.count_only;
  plan.limit = request.limit;
  plan.visible_rows = state.num_rows;

  if (request.shape == QueryRequest::Shape::kTerms) {
    RangeQuery query;
    query.semantics = request.semantics;
    for (const NamedTerm& term : request.terms) {
      INCDB_ASSIGN_OR_RETURN(QueryTerm resolved,
                             ResolveNamedTerm(table, term));
      query.terms.push_back(resolved);
    }
    INCDB_RETURN_IF_ERROR(ValidateQuery(query, table));
    if (segmented) {
      const internal::SegmentList& segments = *state.segments;
      std::unique_ptr<PlanNode> probe = MakeSegmentProbe(&state, segments,
                                                         query);
      Pick picked;
      picked.decision.index_kind = segments.options.index_kind;
      picked.decision.index_name =
          "SEG[" + segments.segments.front()->index->Name() + "]";
      picked.decision.is_point_query = TermsArePoint(query.terms);
      picked.decision.estimated_selectivity =
          TermsSelectivity(state, query.terms, query.semantics);
      picked.decision.estimated_cost =
          KindCost(state, segments.options.index_kind, query.terms,
                   query.semantics, picked.decision.estimated_selectivity) *
          UnprunedFraction(*probe);
      plan.routing = picked.decision;
      plan.covered_rows = segments.sealed_rows;
      std::unique_ptr<PlanNode> sink = MakeSink(request, picked);
      probe->count_direct = request.count_only &&
                            segments.sealed_rows == state.num_rows &&
                            state.num_deleted == 0;
      sink->children.push_back(std::move(probe));
      if (segments.sealed_rows < state.num_rows) {
        sink->children.push_back(MakeTermsScan(&state, OpKind::kDeltaScan,
                                               table, segments.sealed_rows,
                                               state.num_rows,
                                               std::move(query)));
      }
      plan.root = std::move(sink);
      return plan;
    }
    const Pick picked = PickForRangeQuery(state, query);
    plan.routing = picked.decision;
    std::unique_ptr<PlanNode> sink = MakeSink(request, picked);
    if (picked.entry == nullptr) {
      plan.covered_rows = state.num_rows;
      sink->children.push_back(MakeTermsScan(&state, OpKind::kSeqScanFallback,
                                             table, 0, state.num_rows,
                                             std::move(query)));
    } else {
      const internal::SnapshotIndexEntry& entry = *picked.entry;
      plan.covered_rows = entry.covered_rows;
      const bool count_direct = request.count_only &&
                                entry.covered_rows == state.num_rows &&
                                state.num_deleted == 0;
      if (parallel && !count_direct && query.terms.size() >= 2) {
        // One single-term probe per dimension under an And, so the
        // executor evaluates the dimensions concurrently. Bit-identical to
        // the fused probe: a multi-term conjunction is the AND of its
        // single-term results under either semantics.
        auto conjunction = std::make_unique<PlanNode>();
        conjunction->kind = OpKind::kAnd;
        conjunction->estimated_selectivity =
            picked.decision.estimated_selectivity;
        conjunction->label = "And";
        for (const QueryTerm& term : query.terms) {
          RangeQuery single;
          single.terms = {term};
          single.semantics = query.semantics;
          conjunction->children.push_back(
              MakeProbe(&state, *entry.index, std::move(single)));
        }
        sink->children.push_back(std::move(conjunction));
      } else {
        std::unique_ptr<PlanNode> probe =
            MakeProbe(&state, *entry.index, query);
        probe->count_direct = count_direct;
        sink->children.push_back(std::move(probe));
      }
      if (entry.covered_rows < state.num_rows) {
        sink->children.push_back(MakeTermsScan(&state, OpKind::kDeltaScan,
                                               table, entry.covered_rows,
                                               state.num_rows,
                                               std::move(query)));
      }
    }
    plan.root = std::move(sink);
    return plan;
  }

  // Expression and text requests share the Kleene lowering path.
  std::optional<QueryExpr> parsed;
  if (request.shape == QueryRequest::Shape::kText) {
    auto parse_result = ParseQuery(request.text, table);
    if (!parse_result.ok()) return parse_result.status();
    parsed = std::move(parse_result).value();
  } else {
    if (!request.expression.has_value()) {
      return Status::InvalidArgument(
          "expression request carries no expression");
    }
    parsed = *request.expression;
  }
  const QueryExpr& expr = *parsed;
  INCDB_RETURN_IF_ERROR(expr.Validate(table));
  if (segmented) {
    const internal::SegmentList& segments = *state.segments;
    std::vector<QueryTerm> leaves;
    CollectLeafTerms(expr, &leaves);
    Pick picked;
    picked.decision.index_kind = segments.options.index_kind;
    picked.decision.index_name =
        "SEG[" + segments.segments.front()->index->Name() + "]";
    picked.decision.is_point_query = TermsArePoint(leaves);
    picked.decision.estimated_selectivity =
        ExprSelectivity(state, expr, request.semantics);
    picked.decision.estimated_cost =
        KindCost(state, segments.options.index_kind, leaves,
                 request.semantics, picked.decision.estimated_selectivity);
    plan.routing = picked.decision;
    plan.covered_rows = segments.sealed_rows;
    std::unique_ptr<PlanNode> sink = MakeSink(request, picked);
    const LeafFactory make_leaf = [&state, &segments](RangeQuery query) {
      return MakeSegmentProbe(&state, segments, std::move(query));
    };
    INCDB_ASSIGN_OR_RETURN(
        std::unique_ptr<PlanNode> main,
        LowerExpr(make_leaf, expr, request.semantics,
                  /*split_conjunctions=*/false));
    sink->children.push_back(std::move(main));
    if (segments.sealed_rows < state.num_rows) {
      sink->children.push_back(MakeExprScan(&state, OpKind::kDeltaScan, table,
                                            segments.sealed_rows,
                                            state.num_rows, expr,
                                            request.semantics));
    }
    plan.root = std::move(sink);
    return plan;
  }
  const Pick picked = PickForExpression(state, expr, request.semantics);
  plan.routing = picked.decision;
  std::unique_ptr<PlanNode> sink = MakeSink(request, picked);
  if (picked.entry == nullptr) {
    plan.covered_rows = state.num_rows;
    sink->children.push_back(MakeExprScan(&state, OpKind::kSeqScanFallback,
                                          table, 0, state.num_rows, expr,
                                          request.semantics));
  } else {
    const internal::SnapshotIndexEntry& entry = *picked.entry;
    plan.covered_rows = entry.covered_rows;
    const LeafFactory make_leaf = [&state, &entry](RangeQuery query) {
      return MakeProbe(&state, *entry.index, std::move(query));
    };
    INCDB_ASSIGN_OR_RETURN(
        std::unique_ptr<PlanNode> main,
        LowerExpr(make_leaf, expr, request.semantics, parallel));
    sink->children.push_back(std::move(main));
    if (entry.covered_rows < state.num_rows) {
      sink->children.push_back(MakeExprScan(&state, OpKind::kDeltaScan, table,
                                            entry.covered_rows,
                                            state.num_rows, expr,
                                            request.semantics));
    }
  }
  plan.root = std::move(sink);
  return plan;
}

Result<PhysicalPlan> PlanRangeOverIndex(const IncompleteIndex& index,
                                        const RangeQuery& query) {
  PhysicalPlan plan;
  plan.semantics = query.semantics;
  plan.root = MakeProbe(nullptr, index, query);
  return plan;
}

Result<PhysicalPlan> PlanExprOverIndex(const IncompleteIndex& index,
                                       const QueryExpr& expr,
                                       MissingSemantics semantics) {
  PhysicalPlan plan;
  plan.semantics = semantics;
  const LeafFactory make_leaf = [&index](RangeQuery query) {
    return MakeProbe(nullptr, index, std::move(query));
  };
  INCDB_ASSIGN_OR_RETURN(plan.root,
                         LowerExpr(make_leaf, expr, semantics,
                                   /*split_conjunctions=*/false));
  return plan;
}

Result<QueryResult> RunOnSnapshot(const Snapshot& snapshot,
                                  const QueryRequest& request) {
  INCDB_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanRequest(snapshot, request));
  ExecOptions options;
  options.num_threads = request.parallelism;
  if (request.deadline_millis != 0) {
    options.deadline = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(request.deadline_millis);
  }
  INCDB_ASSIGN_OR_RETURN(QueryResult result, ExecutePlan(&plan, options));
  result.routing = plan.routing;
  result.chosen_index = plan.routing.index_name;
  result.epoch = snapshot.epoch();
  result.visible_rows = snapshot.num_rows();
  if (request.explain) result.explain = ExplainPlan(plan);
  return result;
}

}  // namespace plan
}  // namespace incdb
