#ifndef INCDB_COMPRESSION_WAH_BITVECTOR_H_
#define INCDB_COMPRESSION_WAH_BITVECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bitvector/bitvector.h"
#include "common/io.h"

namespace incdb {

/// Word-Aligned Hybrid (WAH) compressed bitvector (Wu, Otoo, Shoshani),
/// parameterized on the machine word type.
///
/// The paper executes all bitmap-index query operations directly over
/// WAH-compressed bitvectors; this class is that substrate. The canonical
/// format (and the paper's) uses 32-bit words — `WahBitVector` below; the
/// 64-bit instantiation `Wah64BitVector` exists for the word-size ablation
/// (bigger groups = fewer words touched per op, but 63-bit groups compress
/// long runs less often than 31-bit groups do).
///
/// Layout: a sequence of words. The most significant bit distinguishes the
/// two word types:
///  * literal word (MSB = 0): the low W-1 bits hold W-1 bitmap bits
///    (LSB-first: bit j of the word is bitmap bit `group*(W-1) + j`);
///  * fill word (MSB = 1): the next bit is the fill bit, the remaining
///    W-2 bits hold the fill length counted in (W-1)-bit groups.
/// A partial trailing group lives in the `active` word.
///
/// Logical operations (And/Or/Xor/Not) consume and produce compressed
/// vectors without decompressing; fills are processed in O(1) per run,
/// which is the source of the speedups the paper reports.
template <typename WordT>
class BasicWahBitVector {
 public:
  /// Bits per literal group (W - 1).
  static constexpr int kGroupBits = static_cast<int>(sizeof(WordT) * 8) - 1;

  /// Empty vector (zero bits).
  BasicWahBitVector() = default;

  /// Compresses a verbatim bitvector.
  static BasicWahBitVector Compress(const BitVector& bits);

  /// A vector of `size` copies of `bit` (maximally compressed).
  static BasicWahBitVector Fill(uint64_t size, bool bit);

  /// Appends a single bit.
  void AppendBit(bool bit);

  /// Appends `count` copies of `bit`.
  void AppendRun(bool bit, uint64_t count);

  /// Number of bits represented.
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of set bits, computed over the compressed form.
  uint64_t Count() const;

  /// Expands to a verbatim bitvector.
  BitVector Decompress() const;

  /// Value of bit `index` (O(words) scan; intended for tests/spot checks).
  bool Get(uint64_t index) const;

  /// Compressed payload size in bytes (code words plus the active word).
  uint64_t SizeInBytes() const;

  /// Compressed bytes divided by verbatim bitmap bytes (size()/8). An
  /// incompressible vector yields ~W/(W-1) (1.03 for 32-bit words),
  /// matching the paper's observation that WAH can slightly inflate random
  /// bitmaps.
  double CompressionRatio() const;

  /// Logical operations over the compressed form. Operands must have equal
  /// size(); the result is compressed.
  BasicWahBitVector And(const BasicWahBitVector& other) const;
  BasicWahBitVector Or(const BasicWahBitVector& other) const;
  BasicWahBitVector Xor(const BasicWahBitVector& other) const;
  /// a AND (NOT b), used to strip missing rows without a separate Not pass.
  BasicWahBitVector AndNot(const BasicWahBitVector& other) const;
  /// Bitwise complement.
  BasicWahBitVector Not() const;

  bool operator==(const BasicWahBitVector& other) const {
    return size_ == other.size_ && active_bits_ == other.active_bits_ &&
           active_word_ == other.active_word_ && words_ == other.words_;
  }

  /// Number of code words (excluding the active word).
  uint64_t NumWords() const { return words_.size(); }

  /// Debug rendering: "L:xxxxx" literal words and "F<bit>x<n>" fills.
  std::string DebugString() const;

  /// Writes the compressed payload to `writer` (the on-disk form whose
  /// size the paper's index-size metric measures). The format depends on
  /// the word width; files are not interchangeable between instantiations.
  void SaveTo(BinaryWriter& writer) const;

  /// Reads a payload written by SaveTo. Validates internal consistency.
  static Result<BasicWahBitVector> LoadFrom(BinaryReader& reader);

 private:
  // Emits into words_ only (no size_ accounting), merging adjacent fills
  // and converting all-zero / all-one literals to fills.
  void EmitFill(bool bit, uint64_t groups);
  void EmitLiteral(WordT literal);
  void FlushActiveGroup();

  enum class OpKind { kAnd, kOr, kXor, kAndNot };
  BasicWahBitVector BinaryOp(const BasicWahBitVector& other, OpKind op) const;

  std::vector<WordT> words_;
  WordT active_word_ = 0;  // partial trailing group, LSB-first
  int active_bits_ = 0;    // bits in active_word_, in [0, kGroupBits)
  uint64_t size_ = 0;      // total bits
};

/// The paper's (and FastBit's) canonical 32-bit WAH.
using WahBitVector = BasicWahBitVector<uint32_t>;
/// 64-bit-word WAH for the word-size ablation.
using Wah64BitVector = BasicWahBitVector<uint64_t>;

extern template class BasicWahBitVector<uint32_t>;
extern template class BasicWahBitVector<uint64_t>;

}  // namespace incdb

#endif  // INCDB_COMPRESSION_WAH_BITVECTOR_H_
