#ifndef INCDB_COMPRESSION_WAH_BITVECTOR_H_
#define INCDB_COMPRESSION_WAH_BITVECTOR_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "bitvector/bitvector.h"
#include "common/io.h"
#include "simd/simd.h"

namespace incdb {

/// Counters the fused multiway kernels report about how they executed —
/// whether the SIMD dense-block fast path ran and how much it decoded.
/// Surfaced per operator as QueryStats::simd_path / words_decoded, so the
/// dense-path decision is observable in EXPLAIN and `incdb_cli --stats`.
struct WahOpStats {
  /// Windows routed through the dense path: lead operand materialized into
  /// an uncompressed accumulator and the rest stream-combined through the
  /// vectorized kernels, instead of run-at-a-time merging over the
  /// compressed form.
  uint64_t dense_windows = 0;
  /// Group words the dense path processed in uncompressed form (operands x
  /// window groups — the word traffic the fast path trades for vector
  /// throughput).
  uint64_t words_decoded = 0;

  void MergeFrom(const WahOpStats& other) {
    dense_windows += other.dense_windows;
    words_decoded += other.words_decoded;
  }
};

namespace wah_internal {

/// Literal-group density (literal groups / total groups in a window,
/// averaged over operands) at or above which the fused kernels take the
/// dense-block path. The default is the measured crossover from
/// bench_simd_kernels (docs/KERNELS.md has the derivation); the
/// INCDB_DENSE_THRESHOLD environment variable overrides it at startup.
double DenseBlockThreshold();

/// Test/bench hook: 0.0 forces every window dense, anything above 1.0
/// disables the dense path entirely. Returns the previous value.
double SetDenseBlockThresholdForTesting(double threshold);

/// Per-word-type constants and code-word accessors. With W = bits per word:
/// the top bit flags a fill, the next bit is the fill value, the remaining
/// W-2 bits count fill groups of W-1 bits each.
template <typename WordT>
struct WahTraits {
  static constexpr int kWordBits = static_cast<int>(sizeof(WordT) * 8);
  static constexpr int kGroupBits = kWordBits - 1;
  static constexpr WordT kFillFlag = WordT{1} << (kWordBits - 1);
  static constexpr WordT kFillBitFlag = WordT{1} << (kWordBits - 2);
  static constexpr WordT kFillCountMask = kFillBitFlag - 1;
  static constexpr uint64_t kMaxFillGroups = kFillCountMask;
  static constexpr WordT kFullLiteral = kFillFlag - 1;

  static bool IsFill(WordT word) { return (word & kFillFlag) != 0; }
  static bool FillBit(WordT word) { return (word & kFillBitFlag) != 0; }
  static uint64_t FillGroups(WordT word) { return word & kFillCountMask; }
  static WordT MakeFill(bool bit, uint64_t groups) {
    return kFillFlag | (bit ? kFillBitFlag : WordT{0}) |
           static_cast<WordT>(groups & kFillCountMask);
  }
};

}  // namespace wah_internal

template <typename WordT>
class BasicWahBitVector;

/// Cursor over the group-aligned part of a compressed vector, yielding runs
/// in O(1) per code word: a fill word is one run of FillGroups groups, a
/// literal word a run of one group. The shared decoding primitive for the
/// pairwise ops, the fused multi-operand kernels, and any external consumer
/// that wants to walk the compressed form without decompressing.
///
/// The partial trailing group (the vector's `active` word) is NOT part of
/// the run stream; callers that need it must handle it separately.
template <typename WordT>
class BasicWahRunIterator {
  using Traits = wah_internal::WahTraits<WordT>;

 public:
  explicit BasicWahRunIterator(const BasicWahBitVector<WordT>& vec);

  /// True once every group-aligned run has been consumed.
  bool done() const { return groups_left_ == 0; }

  bool is_fill() const { return is_fill_; }
  bool fill_bit() const { return fill_bit_; }
  /// Groups remaining in the current run (>= 1 unless done).
  uint64_t groups_left() const { return groups_left_; }

  /// The current run viewed as a literal word (fills expand to 0/all-ones).
  WordT LiteralView() const {
    if (!is_fill_) return literal_;
    return fill_bit_ ? Traits::kFullLiteral : WordT{0};
  }

  /// Consumes n groups from the current run (n <= groups_left()).
  void Consume(uint64_t n) {
    groups_left_ -= n;
    if (groups_left_ == 0) Load();
  }

  /// Consumes n groups, crossing run boundaries as needed. Used by the
  /// fused kernels' fill fast paths to leap over absorbed stretches.
  void Skip(uint64_t n) {
    while (n > 0) {
      const uint64_t take = n < groups_left_ ? n : groups_left_;
      Consume(take);
      n -= take;
    }
  }

  /// Bulk literal copy, the dense path's decode primitive: positioned on a
  /// literal (!is_fill()), copies the current literal and up to max-1
  /// immediately following literal words into dst, consuming them all.
  /// Consecutive literals are adjacent in the code-word stream, so this is
  /// a straight scan-and-copy. Returns the number copied (>= 1).
  uint64_t CopyLiteralRun(WordT* dst, uint64_t max) {
    dst[0] = literal_;
    uint64_t n = 1;
    while (n < max && pos_ < words_.size() && !Traits::IsFill(words_[pos_])) {
      dst[n++] = words_[pos_++];
    }
    groups_left_ = 0;
    Load();
    return n;
  }

  /// CopyLiteralRun without even the copy: positioned on a literal, returns
  /// a pointer into the code-word stream covering this literal and up to
  /// max-1 immediately following literal words, consuming them all and
  /// storing the count in *n. A literal code word IS its decoded group word
  /// (the fill-flag MSB is 0), so callers can feed the returned span to the
  /// bulk kernels directly — the dense fast path's zero-copy primitive.
  const WordT* ViewLiteralRun(uint64_t max, uint64_t* n) {
    const WordT* run = &words_[pos_ - 1];
    uint64_t count = 1;
    while (count < max && pos_ < words_.size() &&
           !Traits::IsFill(words_[pos_])) {
      ++count;
      ++pos_;
    }
    groups_left_ = 0;
    Load();
    *n = count;
    return run;
  }

  /// CopyLiteralRun without the copy: consumes up to `max` consecutive
  /// literal groups and returns how many. One fill test per code word, no
  /// decode.
  uint64_t SkipLiteralRun(uint64_t max) {
    uint64_t n = 1;
    while (n < max && pos_ < words_.size() && !Traits::IsFill(words_[pos_])) {
      ++n;
      ++pos_;
    }
    groups_left_ = 0;
    Load();
    return n;
  }

 private:
  void Load() {
    while (pos_ < words_.size()) {
      const WordT w = words_[pos_++];
      if (Traits::IsFill(w)) {
        const uint64_t n = Traits::FillGroups(w);
        if (n == 0) continue;  // defensive: skip empty fills
        is_fill_ = true;
        fill_bit_ = Traits::FillBit(w);
        groups_left_ = n;
        return;
      }
      is_fill_ = false;
      literal_ = w;
      groups_left_ = 1;
      return;
    }
    groups_left_ = 0;
  }

  std::span<const WordT> words_;
  size_t pos_ = 0;
  bool is_fill_ = false;
  bool fill_bit_ = false;
  WordT literal_ = 0;
  uint64_t groups_left_ = 0;
};

/// Word-Aligned Hybrid (WAH) compressed bitvector (Wu, Otoo, Shoshani),
/// parameterized on the machine word type.
///
/// The paper executes all bitmap-index query operations directly over
/// WAH-compressed bitvectors; this class is that substrate. The canonical
/// format (and the paper's) uses 32-bit words — `WahBitVector` below; the
/// 64-bit instantiation `Wah64BitVector` exists for the word-size ablation
/// (bigger groups = fewer words touched per op, but 63-bit groups compress
/// long runs less often than 31-bit groups do).
///
/// Layout: a sequence of words. The most significant bit distinguishes the
/// two word types:
///  * literal word (MSB = 0): the low W-1 bits hold W-1 bitmap bits
///    (LSB-first: bit j of the word is bitmap bit `group*(W-1) + j`);
///  * fill word (MSB = 1): the next bit is the fill bit, the remaining
///    W-2 bits hold the fill length counted in (W-1)-bit groups.
/// A partial trailing group lives in the `active` word.
///
/// Logical operations (And/Or/Xor/Not) consume and produce compressed
/// vectors without decompressing; fills are processed in O(1) per run,
/// which is the source of the speedups the paper reports. The fused
/// multi-operand kernels (OrMany/AndMany and the *Count variants) fold k
/// operands in a single pass, re-compressing once instead of k-1 times.
template <typename WordT>
class BasicWahBitVector {
 public:
  /// Bits per literal group (W - 1).
  static constexpr int kGroupBits = static_cast<int>(sizeof(WordT) * 8) - 1;

  /// Empty vector (zero bits).
  BasicWahBitVector() = default;

  /// Compresses a verbatim bitvector.
  static BasicWahBitVector Compress(const BitVector& bits);

  /// A vector of `size` copies of `bit` (maximally compressed).
  static BasicWahBitVector Fill(uint64_t size, bool bit);

  /// A non-owning ("borrowed") vector whose code words live in external
  /// memory — the storage engine's mmap zero-copy mode: the words stay in
  /// the page cache and are never copied into the heap. The caller
  /// guarantees `words` outlives the vector (and every vector copied from
  /// it). Validation is O(1) — structural metadata only; the group-count
  /// cross-check against `size` is ValidateStructure(), which the storage
  /// reader runs only under OpenOptions::verify_checksums so opening stays
  /// independent of the word count.
  static Result<BasicWahBitVector> FromBorrowed(std::span<const WordT> words,
                                                WordT active_word,
                                                int active_bits,
                                                uint64_t size);

  /// True when the code words are borrowed from external memory.
  bool borrowed() const { return borrowed_words_ != nullptr; }

  /// The compressed code words (excluding the active word), wherever they
  /// live — the owned heap buffer or a borrowed mapping.
  std::span<const WordT> code_words() const {
    return borrowed() ? std::span<const WordT>(borrowed_words_, num_borrowed_)
                      : std::span<const WordT>(words_);
  }

  /// The partial trailing group (active_bits() low bits are meaningful).
  WordT active_word() const { return active_word_; }
  int active_bits() const { return active_bits_; }

  /// O(words) structural invariant check: decoded group count plus the
  /// active bits must equal size(). The deep half of FromBorrowed's
  /// validation (see there for why it is separate).
  Status ValidateStructure() const;

  /// Appends a single bit. A borrowed vector detaches first (one-time copy
  /// of the borrowed words into owned storage).
  void AppendBit(bool bit);

  /// Appends `count` copies of `bit`. Detaches a borrowed vector.
  void AppendRun(bool bit, uint64_t count);

  /// Number of bits represented.
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of set bits, computed over the compressed form.
  uint64_t Count() const;

  /// Expands to a verbatim bitvector.
  BitVector Decompress() const;

  /// Value of bit `index`. This is an O(words) scan from the start of the
  /// compressed form — fine for spot checks, but quadratic when called for
  /// every position in a loop. Batch readers should use ForEachSetBit (one
  /// pass over set bits) or Decompress (one pass, verbatim form) instead.
  bool Get(uint64_t index) const;

  /// Calls `fn(uint64_t index)` for every set bit, in ascending order, in a
  /// single pass over the compressed form: O(words + set bits) total, versus
  /// O(words) *per call* for Get.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    using Traits = wah_internal::WahTraits<WordT>;
    uint64_t bit_pos = 0;
    for (WordT w : code_words()) {
      if (Traits::IsFill(w)) {
        const uint64_t span_bits = Traits::FillGroups(w) * kGroupBits;
        if (Traits::FillBit(w)) {
          // Emit the one-fill as whole 64-bit chunks through the extraction
          // primitive (a counted loop per chunk) instead of one indexed
          // loop iteration per bit with a 64-bit bound compare each.
          uint64_t i = 0;
          for (; i + 64 <= span_bits; i += 64) {
            simd::ForEachSetBitInWord(~uint64_t{0}, bit_pos + i, fn);
          }
          if (i < span_bits) {
            const uint64_t tail =
                (uint64_t{1} << (span_bits - i)) - 1;
            simd::ForEachSetBitInWord(tail, bit_pos + i, fn);
          }
        }
        bit_pos += span_bits;
      } else {
        for (WordT v = w; v != 0; v &= v - 1) {
          fn(bit_pos + static_cast<uint64_t>(std::countr_zero(v)));
        }
        bit_pos += kGroupBits;
      }
    }
    for (int i = 0; i < active_bits_; ++i) {
      if ((active_word_ >> i) & 1) fn(bit_pos + static_cast<uint64_t>(i));
    }
  }

  /// Compressed payload size in bytes (code words plus the active word).
  uint64_t SizeInBytes() const;

  /// Compressed bytes divided by verbatim bitmap bytes (size()/8). An
  /// incompressible vector yields ~W/(W-1) (1.03 for 32-bit words),
  /// matching the paper's observation that WAH can slightly inflate random
  /// bitmaps.
  double CompressionRatio() const;

  /// Logical operations over the compressed form. Operands must have equal
  /// size(); the result is compressed.
  BasicWahBitVector And(const BasicWahBitVector& other) const;
  BasicWahBitVector Or(const BasicWahBitVector& other) const;
  BasicWahBitVector Xor(const BasicWahBitVector& other) const;
  /// a AND (NOT b), used to strip missing rows without a separate Not pass.
  BasicWahBitVector AndNot(const BasicWahBitVector& other) const;
  /// Bitwise complement.
  BasicWahBitVector Not() const;

  /// One operand of a fused multi-way kernel: a vector, optionally read
  /// through a complement (`negate`) without ever materializing NOT(vec).
  struct Operand {
    const BasicWahBitVector* vec = nullptr;
    bool negate = false;
  };

  /// Fused k-way OR / AND over the compressed form, re-compressing once at
  /// the end instead of k-1 times as the pairwise fold does. The engine is
  /// windowed and hybrid: each group-aligned window is routed by literal
  /// density either through the sparse path (run-at-a-time merging with
  /// absorbing-fill leaps / windowed scatter) or, above the dense-block
  /// threshold, through the SIMD dense path — operand windows are decoded
  /// into uncompressed word buffers, combined with the runtime-dispatched
  /// vector kernels (simd/simd.h), and re-encoded at the sink.
  /// Operands must be non-empty and of equal size(). `op_stats`, when
  /// non-null, accumulates which path ran (EXPLAIN's simd=/decoded=).
  static BasicWahBitVector OrMany(
      std::span<const BasicWahBitVector* const> operands,
      WahOpStats* op_stats = nullptr);
  static BasicWahBitVector AndMany(
      std::span<const BasicWahBitVector* const> operands,
      WahOpStats* op_stats = nullptr);
  /// AND with per-operand complement, e.g. the bit-sliced equality circuit
  /// AND_k (bit k set ? S_k : NOT S_k) in one fused pass.
  static BasicWahBitVector AndMany(std::span<const Operand> operands,
                                   WahOpStats* op_stats = nullptr);

  /// Fused count kernels: identical walks to OrMany/AndMany that produce
  /// only the popcount of the result — no result vector is materialized.
  /// The workhorses of ExecuteCount / ExecuteGroupCount / ExecuteAggregate.
  static uint64_t OrManyCount(
      std::span<const BasicWahBitVector* const> operands,
      WahOpStats* op_stats = nullptr);
  static uint64_t AndManyCount(
      std::span<const BasicWahBitVector* const> operands,
      WahOpStats* op_stats = nullptr);
  static uint64_t AndManyCount(std::span<const Operand> operands,
                               WahOpStats* op_stats = nullptr);
  /// Count of a AND b without materializing it (the per-group kernel of
  /// GROUP BY / aggregates).
  static uint64_t AndCount(const BasicWahBitVector& a,
                           const BasicWahBitVector& b,
                           WahOpStats* op_stats = nullptr);

  /// Content equality: a borrowed vector equals an owned one holding the
  /// same code words.
  bool operator==(const BasicWahBitVector& other) const {
    const std::span<const WordT> a = code_words();
    const std::span<const WordT> b = other.code_words();
    return size_ == other.size_ && active_bits_ == other.active_bits_ &&
           active_word_ == other.active_word_ && a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin());
  }

  /// Number of code words (excluding the active word).
  uint64_t NumWords() const { return code_words().size(); }

  /// Debug rendering: "L:xxxxx" literal words and "F<bit>x<n>" fills.
  std::string DebugString() const;

  /// Writes the compressed payload to `writer` (the on-disk form whose
  /// size the paper's index-size metric measures). The format depends on
  /// the word width; files are not interchangeable between instantiations.
  void SaveTo(BinaryWriter& writer) const;

  /// Reads a payload written by SaveTo. Validates internal consistency.
  static Result<BasicWahBitVector> LoadFrom(BinaryReader& reader);

 private:
  friend class BasicWahRunIterator<WordT>;

  // Shared single-pass engines behind the public fused kernels.
  static BasicWahBitVector FuseToVector(std::span<const Operand> operands,
                                        bool is_or, WahOpStats* op_stats);
  static uint64_t FuseToCount(std::span<const Operand> operands, bool is_or,
                              WahOpStats* op_stats);

  // Emits into words_ only (no size_ accounting), merging adjacent fills
  // and converting all-zero / all-one literals to fills.
  void EmitFill(bool bit, uint64_t groups);
  void EmitLiteral(WordT literal);
  void FlushActiveGroup();

  enum class OpKind { kAnd, kOr, kXor, kAndNot };
  BasicWahBitVector BinaryOp(const BasicWahBitVector& other, OpKind op) const;

  // Copies borrowed code words into words_ so mutators can extend them.
  // No-op for an owned vector.
  void Detach();

  std::vector<WordT> words_;
  // Borrowed (non-owning) code words; when set, words_ is empty and all
  // reads go through code_words(). Copies of a borrowed vector stay
  // borrowed (shallow pointer copy) — the mapping must outlive them all.
  const WordT* borrowed_words_ = nullptr;
  size_t num_borrowed_ = 0;
  WordT active_word_ = 0;  // partial trailing group, LSB-first
  int active_bits_ = 0;    // bits in active_word_, in [0, kGroupBits)
  uint64_t size_ = 0;      // total bits
};

template <typename WordT>
BasicWahRunIterator<WordT>::BasicWahRunIterator(
    const BasicWahBitVector<WordT>& vec)
    : words_(vec.code_words()) {
  Load();
}

/// The paper's (and FastBit's) canonical 32-bit WAH.
using WahBitVector = BasicWahBitVector<uint32_t>;
/// 64-bit-word WAH for the word-size ablation.
using Wah64BitVector = BasicWahBitVector<uint64_t>;

using WahRunIterator = BasicWahRunIterator<uint32_t>;
using Wah64RunIterator = BasicWahRunIterator<uint64_t>;

extern template class BasicWahBitVector<uint32_t>;
extern template class BasicWahBitVector<uint64_t>;

}  // namespace incdb

#endif  // INCDB_COMPRESSION_WAH_BITVECTOR_H_
