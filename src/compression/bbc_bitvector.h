#ifndef INCDB_COMPRESSION_BBC_BITVECTOR_H_
#define INCDB_COMPRESSION_BBC_BITVECTOR_H_

#include <cstdint>
#include <vector>

#include "bitvector/bitvector.h"

namespace incdb {

/// Byte-aligned Bitmap Code (BBC, Antoshenkov) — simplified encoder.
///
/// The paper chose WAH over BBC because WAH's word-aligned logical
/// operations are 2-20x faster even though BBC compresses better. This
/// class exists to reproduce that trade-off: byte-granularity run-length
/// compression (finer than WAH's 31-bit groups, hence smaller indexes),
/// with logical operations executed natively over the byte-aligned runs —
/// aligned fill runs combine in O(1), everything else byte-by-byte, which
/// is exactly why BBC ops lose to WAH's word-at-a-time ops.
///
/// Encoding: a sequence of blocks, each
///   header byte:  bit 7    = fill bit value
///                 bits 4-6 = number of literal bytes following (0-7)
///                 bits 0-3 = fill length in bytes; 15 means the length
///                            continues in a following varint
///   [varint fill length]   when the 4-bit field is 15
///   [literal bytes]
/// Each block is `fill_len` copies of the fill byte (0x00 or 0xFF) followed
/// by the literal bytes. Trailing bits short of a byte are stored in the
/// final literal byte, zero-padded (size() disambiguates).
class BbcBitVector {
 public:
  BbcBitVector() = default;

  /// Compresses a verbatim bitvector.
  static BbcBitVector Compress(const BitVector& bits);

  /// Expands to a verbatim bitvector.
  BitVector Decompress() const;

  uint64_t size() const { return size_; }

  /// Compressed payload bytes.
  uint64_t SizeInBytes() const { return bytes_.size(); }

  /// Compressed bytes divided by verbatim bitmap bytes (size()/8).
  double CompressionRatio() const;

  /// Logical operations over the compressed byte-aligned form. Operands
  /// must have equal size(); the result is compressed.
  BbcBitVector And(const BbcBitVector& other) const;
  BbcBitVector Or(const BbcBitVector& other) const;
  BbcBitVector Xor(const BbcBitVector& other) const;

  bool operator==(const BbcBitVector& other) const {
    return size_ == other.size_ && bytes_ == other.bytes_;
  }

 private:
  // Run-merging byte-aligned op; op codes: 0 = AND, 1 = OR, 2 = XOR.
  BbcBitVector BinaryOp(const BbcBitVector& other, int op) const;

  std::vector<uint8_t> bytes_;
  uint64_t size_ = 0;
};

}  // namespace incdb

#endif  // INCDB_COMPRESSION_BBC_BITVECTOR_H_
