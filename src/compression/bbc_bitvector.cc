#include "compression/bbc_bitvector.h"

#include "common/bitutil.h"
#include "common/logging.h"

namespace incdb {

namespace {

constexpr uint8_t kFillBitFlag = 0x80;
constexpr int kLiteralCountShift = 4;
constexpr uint8_t kLiteralCountMask = 0x07;
constexpr uint8_t kFillLenMask = 0x0F;
constexpr uint8_t kFillLenExtended = 0x0F;
constexpr int kMaxLiterals = 7;

void AppendVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

uint64_t ReadVarint(const std::vector<uint8_t>& in, size_t& pos) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    const uint8_t byte = in[pos++];
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return value;
}

// Extracts byte `i` of the verbatim bitmap.
uint8_t ByteAt(const BitVector& bits, uint64_t i) {
  const std::vector<uint64_t>& words = bits.words();
  const uint64_t word = words[i / 8];
  return static_cast<uint8_t>(word >> ((i % 8) * 8));
}

void EmitBlock(std::vector<uint8_t>& out, bool fill_bit, uint64_t fill_len,
               const std::vector<uint8_t>& literals) {
  INCDB_DCHECK(literals.size() <= kMaxLiterals);
  uint8_t header = 0;
  if (fill_bit) header |= kFillBitFlag;
  header |= static_cast<uint8_t>(literals.size()) << kLiteralCountShift;
  if (fill_len >= kFillLenExtended) {
    header |= kFillLenExtended;
    out.push_back(header);
    AppendVarint(out, fill_len);
  } else {
    header |= static_cast<uint8_t>(fill_len);
    out.push_back(header);
  }
  out.insert(out.end(), literals.begin(), literals.end());
}

}  // namespace

BbcBitVector BbcBitVector::Compress(const BitVector& bits) {
  BbcBitVector out;
  out.size_ = bits.size();
  const uint64_t num_bytes = bitutil::CeilDiv(bits.size(), 8);
  uint64_t i = 0;
  while (i < num_bytes) {
    // Greedy: a maximal run of identical fill bytes, then up to 7 literals.
    bool fill_bit = false;
    uint64_t fill_len = 0;
    const uint8_t first = ByteAt(bits, i);
    if (first == 0x00 || first == 0xFF) {
      fill_bit = (first == 0xFF);
      while (i < num_bytes && ByteAt(bits, i) == first) {
        ++fill_len;
        ++i;
      }
    }
    std::vector<uint8_t> literals;
    while (i < num_bytes && literals.size() < kMaxLiterals) {
      const uint8_t b = ByteAt(bits, i);
      if (b == 0x00 || b == 0xFF) break;  // start of a new fill run
      literals.push_back(b);
      ++i;
    }
    EmitBlock(out.bytes_, fill_bit, fill_len, literals);
  }
  return out;
}

BitVector BbcBitVector::Decompress() const {
  BitVector out(size_);
  size_t pos = 0;
  uint64_t byte_index = 0;
  auto write_byte = [&](uint8_t b) {
    const uint64_t base = byte_index * 8;
    for (int j = 0; j < 8; ++j) {
      const uint64_t bit = base + static_cast<uint64_t>(j);
      if (bit >= size_) break;
      if ((b >> j) & 1) out.Set(bit);
    }
    ++byte_index;
  };
  while (pos < bytes_.size()) {
    const uint8_t header = bytes_[pos++];
    const bool fill_bit = (header & kFillBitFlag) != 0;
    const int literal_count = (header >> kLiteralCountShift) & kLiteralCountMask;
    uint64_t fill_len = header & kFillLenMask;
    if (fill_len == kFillLenExtended) fill_len = ReadVarint(bytes_, pos);
    for (uint64_t j = 0; j < fill_len; ++j) write_byte(fill_bit ? 0xFF : 0x00);
    for (int j = 0; j < literal_count; ++j) write_byte(bytes_[pos++]);
  }
  return out;
}

double BbcBitVector::CompressionRatio() const {
  if (size_ == 0) return 0.0;
  return static_cast<double>(SizeInBytes()) / (static_cast<double>(size_) / 8.0);
}

namespace {

// Sequential byte-run reader over a BBC payload: exposes the stream as
// fill runs (repeated 0x00/0xFF) and individual literal bytes.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {
    Load();
  }

  bool done() const {
    return fill_remaining_ == 0 && literals_remaining_ == 0 &&
           pos_ >= bytes_.size();
  }

  bool at_fill() const { return fill_remaining_ > 0; }
  uint8_t fill_byte() const { return fill_byte_; }
  uint64_t fill_remaining() const { return fill_remaining_; }

  void ConsumeFill(uint64_t n) {
    INCDB_DCHECK(n <= fill_remaining_);
    fill_remaining_ -= n;
    MaybeLoad();
  }

  uint8_t NextByte() {
    if (fill_remaining_ > 0) {
      --fill_remaining_;
      const uint8_t b = fill_byte_;
      MaybeLoad();
      return b;
    }
    INCDB_DCHECK(literals_remaining_ > 0);
    const uint8_t b = bytes_[pos_++];
    --literals_remaining_;
    MaybeLoad();
    return b;
  }

 private:
  void MaybeLoad() {
    if (fill_remaining_ == 0 && literals_remaining_ == 0) Load();
  }

  void Load() {
    while (pos_ < bytes_.size()) {
      const uint8_t header = bytes_[pos_++];
      fill_byte_ = (header & kFillBitFlag) != 0 ? 0xFF : 0x00;
      literals_remaining_ = (header >> kLiteralCountShift) & kLiteralCountMask;
      fill_remaining_ = header & kFillLenMask;
      if (fill_remaining_ == kFillLenExtended) {
        fill_remaining_ = ReadVarint(bytes_, pos_);
      }
      if (fill_remaining_ > 0 || literals_remaining_ > 0) return;
    }
    fill_remaining_ = 0;
    literals_remaining_ = 0;
  }

  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
  uint8_t fill_byte_ = 0;
  uint64_t fill_remaining_ = 0;
  int literals_remaining_ = 0;
};

// Streaming BBC encoder: accepts output bytes (and bulk fill runs) and
// lays down blocks greedily, mirroring Compress().
class ByteWriter {
 public:
  void Add(uint8_t b) {
    if (b == 0x00 || b == 0xFF) {
      if (!literals_.empty() || (fill_len_ > 0 && fill_byte_ != b)) {
        FlushBlock();
      }
      fill_byte_ = b;
      ++fill_len_;
      return;
    }
    if (literals_.size() == static_cast<size_t>(kMaxLiterals)) FlushBlock();
    literals_.push_back(b);
  }

  void AddFillRun(uint8_t b, uint64_t n) {
    if (n == 0) return;
    if (!literals_.empty() || (fill_len_ > 0 && fill_byte_ != b)) FlushBlock();
    fill_byte_ = b;
    fill_len_ += n;
  }

  std::vector<uint8_t> Finish() {
    if (fill_len_ > 0 || !literals_.empty()) FlushBlock();
    return std::move(out_);
  }

 private:
  void FlushBlock() {
    EmitBlock(out_, fill_byte_ == 0xFF, fill_len_, literals_);
    fill_len_ = 0;
    literals_.clear();
  }

  std::vector<uint8_t> out_;
  uint8_t fill_byte_ = 0;
  uint64_t fill_len_ = 0;
  std::vector<uint8_t> literals_;
};

uint8_t ApplyByteOp(uint8_t a, uint8_t b, int op) {
  switch (op) {
    case 0:
      return a & b;
    case 1:
      return a | b;
    default:
      return a ^ b;
  }
}

}  // namespace

BbcBitVector BbcBitVector::And(const BbcBitVector& other) const {
  return BinaryOp(other, 0);
}

BbcBitVector BbcBitVector::Or(const BbcBitVector& other) const {
  return BinaryOp(other, 1);
}

BbcBitVector BbcBitVector::Xor(const BbcBitVector& other) const {
  return BinaryOp(other, 2);
}

BbcBitVector BbcBitVector::BinaryOp(const BbcBitVector& other, int op) const {
  INCDB_CHECK(size_ == other.size_);
  ByteReader a(bytes_);
  ByteReader b(other.bytes_);
  ByteWriter out;
  while (!a.done() && !b.done()) {
    if (a.at_fill() && b.at_fill()) {
      // Aligned fill runs combine in one step — BBC's fast path.
      const uint64_t n = std::min(a.fill_remaining(), b.fill_remaining());
      out.AddFillRun(ApplyByteOp(a.fill_byte(), b.fill_byte(), op), n);
      a.ConsumeFill(n);
      b.ConsumeFill(n);
    } else {
      out.Add(ApplyByteOp(a.NextByte(), b.NextByte(), op));
    }
  }
  INCDB_CHECK(a.done() && b.done());
  BbcBitVector result;
  result.bytes_ = out.Finish();
  result.size_ = size_;
  return result;
}

}  // namespace incdb
