#include "compression/wah_bitvector.h"

#include <algorithm>
#include <bit>

#include "common/bitutil.h"
#include "common/logging.h"

namespace incdb {

namespace {

template <typename WordT>
using Traits = wah_internal::WahTraits<WordT>;

template <typename WordT>
WordT ApplyOp(WordT a, WordT b, int op) {
  switch (op) {
    case 0:
      return a & b;
    case 1:
      return a | b;
    case 2:
      return a ^ b;
    default:
      return a & (~b & Traits<WordT>::kFullLiteral);
  }
}

// The k-way fusion engine: walks all operands' run streams in lockstep and
// calls `emit(view, n)` for each maximal stretch of n groups over which the
// result is the constant literal view `view` (n > 1 only for fill output).
// Returns the total number of groups emitted.
//
// Fast paths:
//  * absorbing fill (a 1-fill under OR, a 0-fill under AND): the result is
//    the absorbing value for that operand's entire remaining run, so the
//    output leaps over the whole run and every other operand just skips —
//    no per-group work, no operator applications;
//  * absorbing accumulator: once the group accumulator reaches the
//    absorbing value mid-scan, the remaining operands are not consulted;
//  * all-fill alignment: when every operand sits in a fill, the shortest
//    remaining run length is processed as one output fill.
template <typename WordT, typename EmitFn>
uint64_t FuseMany(
    std::span<const typename BasicWahBitVector<WordT>::Operand> ops,
    bool is_or, EmitFn&& emit) {
  const WordT kFull = Traits<WordT>::kFullLiteral;
  const WordT absorbing = is_or ? kFull : WordT{0};
  const WordT identity = is_or ? WordT{0} : kFull;
  std::vector<BasicWahRunIterator<WordT>> its;
  its.reserve(ops.size());
  for (const auto& op : ops) its.emplace_back(*op.vec);
  uint64_t groups_emitted = 0;
  while (!its[0].done()) {
    WordT acc = identity;
    uint64_t n_min = UINT64_MAX;
    uint64_t absorb = 0;
    bool all_fill = true;
    for (size_t i = 0; i < its.size(); ++i) {
      const BasicWahRunIterator<WordT>& it = its[i];
      WordT view = it.LiteralView();
      if (ops[i].negate) view = ~view & kFull;
      if (it.is_fill()) {
        if (view == absorbing) absorb = std::max(absorb, it.groups_left());
      } else {
        all_fill = false;
      }
      if (it.groups_left() < n_min) n_min = it.groups_left();
      acc = is_or ? static_cast<WordT>(acc | view)
                  : static_cast<WordT>(acc & view);
      if (acc == absorbing) break;  // remaining operands cannot change it
    }
    uint64_t n;
    if (acc == absorbing) {
      n = absorb > 0 ? absorb : 1;
    } else {
      n = all_fill ? n_min : 1;
    }
    emit(acc, n);
    for (auto& it : its) it.Skip(n);
    groups_emitted += n;
  }
  for (const auto& it : its) INCDB_CHECK(it.done());
  return groups_emitted;
}

// Per-operand view of the partial trailing group.
template <typename WordT>
WordT ActiveView(const typename BasicWahBitVector<WordT>::Operand& op,
                 WordT active_word, WordT mask) {
  const WordT v = op.negate ? static_cast<WordT>(~active_word) : active_word;
  return v & mask;
}

// ORs one operand's code words into a verbatim group accumulator (one WordT
// per W-1-bit group; bits above kFullLiteral stay zero). This is the k-way
// OR strategy: OR's absorbing runs are 1-fills, which sparse bitmap-index
// operands rarely contain, so the run-merging engine degrades to O(k) work
// per group. A single O(k * compressed words) scatter followed by one
// recompression pass touches each operand word exactly once instead.
template <typename WordT>
void ScatterOrWords(std::span<const WordT> words, bool negate,
                    std::vector<WordT>& buf) {
  uint64_t pos = 0;
  for (WordT w : words) {
    if (Traits<WordT>::IsFill(w)) {
      const uint64_t n = Traits<WordT>::FillGroups(w);
      if (Traits<WordT>::FillBit(w) != negate) {
        std::fill_n(buf.begin() + static_cast<ptrdiff_t>(pos), n,
                    Traits<WordT>::kFullLiteral);
      }
      pos += n;
    } else {
      buf[pos++] |= negate ? static_cast<WordT>(~w & Traits<WordT>::kFullLiteral)
                           : w;
    }
  }
  INCDB_DCHECK(pos == buf.size());
}

// Word-width-dispatched scalar I/O for serialization.
void WriteWord(BinaryWriter& writer, uint32_t word) { writer.WriteU32(word); }
void WriteWord(BinaryWriter& writer, uint64_t word) { writer.WriteU64(word); }
Status ReadWord(BinaryReader& reader, uint32_t* word) {
  INCDB_ASSIGN_OR_RETURN(*word, reader.ReadU32());
  return Status::OK();
}
Status ReadWord(BinaryReader& reader, uint64_t* word) {
  INCDB_ASSIGN_OR_RETURN(*word, reader.ReadU64());
  return Status::OK();
}

}  // namespace

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Compress(
    const BitVector& bits) {
  BasicWahBitVector out;
  const uint64_t n = bits.size();
  const std::vector<uint64_t>& words = bits.words();
  // Extract consecutive (W-1)-bit groups from the 64-bit word array.
  const uint64_t full_groups = n / kGroupBits;
  for (uint64_t g = 0; g < full_groups; ++g) {
    const uint64_t bit_pos = g * kGroupBits;
    const uint64_t word_idx = bit_pos / 64;
    const int offset = static_cast<int>(bit_pos % 64);
    uint64_t chunk = words[word_idx] >> offset;
    if (offset + kGroupBits > 64 && word_idx + 1 < words.size()) {
      chunk |= words[word_idx + 1] << (64 - offset);
    }
    const WordT literal =
        static_cast<WordT>(chunk & bitutil::LowBitsMask(kGroupBits));
    if (literal == 0) {
      out.EmitFill(false, 1);
    } else if (literal == Traits<WordT>::kFullLiteral) {
      out.EmitFill(true, 1);
    } else {
      out.EmitLiteral(literal);
    }
  }
  out.size_ = full_groups * kGroupBits;
  // Trailing partial group into the active word.
  for (uint64_t i = full_groups * kGroupBits; i < n; ++i) {
    out.AppendBit(bits.Get(i));
  }
  return out;
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Fill(uint64_t size,
                                                        bool bit) {
  BasicWahBitVector out;
  out.AppendRun(bit, size);
  return out;
}

template <typename WordT>
void BasicWahBitVector<WordT>::AppendBit(bool bit) {
  Detach();
  if (bit) active_word_ |= WordT{1} << active_bits_;
  ++active_bits_;
  ++size_;
  if (active_bits_ == kGroupBits) FlushActiveGroup();
}

template <typename WordT>
void BasicWahBitVector<WordT>::AppendRun(bool bit, uint64_t count) {
  Detach();
  // Align to a group boundary first.
  while (count > 0 && active_bits_ != 0) {
    AppendBit(bit);
    --count;
  }
  const uint64_t groups = count / kGroupBits;
  if (groups > 0) {
    EmitFill(bit, groups);
    size_ += groups * kGroupBits;
    count -= groups * kGroupBits;
  }
  while (count > 0) {
    AppendBit(bit);
    --count;
  }
}

template <typename WordT>
void BasicWahBitVector<WordT>::FlushActiveGroup() {
  INCDB_DCHECK(active_bits_ == kGroupBits);
  if (active_word_ == 0) {
    EmitFill(false, 1);
  } else if (active_word_ == Traits<WordT>::kFullLiteral) {
    EmitFill(true, 1);
  } else {
    EmitLiteral(active_word_);
  }
  active_word_ = 0;
  active_bits_ = 0;
}

template <typename WordT>
void BasicWahBitVector<WordT>::EmitFill(bool bit, uint64_t groups) {
  INCDB_DCHECK(!borrowed());
  while (groups > 0) {
    if (!words_.empty() && Traits<WordT>::IsFill(words_.back()) &&
        Traits<WordT>::FillBit(words_.back()) == bit) {
      const uint64_t have = Traits<WordT>::FillGroups(words_.back());
      const uint64_t take =
          std::min(groups, Traits<WordT>::kMaxFillGroups - have);
      if (take > 0) {
        words_.back() = Traits<WordT>::MakeFill(bit, have + take);
        groups -= take;
        continue;
      }
    }
    const uint64_t take = std::min(groups, Traits<WordT>::kMaxFillGroups);
    words_.push_back(Traits<WordT>::MakeFill(bit, take));
    groups -= take;
  }
}

template <typename WordT>
void BasicWahBitVector<WordT>::EmitLiteral(WordT literal) {
  INCDB_DCHECK(!borrowed());
  INCDB_DCHECK((literal & Traits<WordT>::kFillFlag) == 0);
  words_.push_back(literal);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::Count() const {
  uint64_t count = 0;
  for (WordT w : code_words()) {
    if (Traits<WordT>::IsFill(w)) {
      if (Traits<WordT>::FillBit(w)) {
        count += Traits<WordT>::FillGroups(w) * kGroupBits;
      }
    } else {
      count += static_cast<uint64_t>(std::popcount(w));
    }
  }
  count += static_cast<uint64_t>(std::popcount(active_word_));
  return count;
}

template <typename WordT>
BitVector BasicWahBitVector<WordT>::Decompress() const {
  BitVector out(size_);
  uint64_t bit_pos = 0;
  auto write_literal = [&](WordT lit) {
    for (WordT w = lit; w != 0; w &= w - 1) {
      out.Set(bit_pos + static_cast<uint64_t>(std::countr_zero(w)));
    }
    bit_pos += kGroupBits;
  };
  for (WordT w : code_words()) {
    if (Traits<WordT>::IsFill(w)) {
      const uint64_t groups = Traits<WordT>::FillGroups(w);
      if (Traits<WordT>::FillBit(w)) {
        for (uint64_t i = 0; i < groups * kGroupBits; ++i) {
          out.Set(bit_pos + i);
        }
      }
      bit_pos += groups * kGroupBits;
    } else {
      write_literal(w);
    }
  }
  for (int i = 0; i < active_bits_; ++i) {
    if ((active_word_ >> i) & 1) out.Set(bit_pos + i);
  }
  return out;
}

template <typename WordT>
bool BasicWahBitVector<WordT>::Get(uint64_t index) const {
  INCDB_CHECK(index < size_);
  uint64_t bit_pos = 0;
  for (WordT w : code_words()) {
    const uint64_t span = Traits<WordT>::IsFill(w)
                              ? Traits<WordT>::FillGroups(w) * kGroupBits
                              : static_cast<uint64_t>(kGroupBits);
    if (index < bit_pos + span) {
      if (Traits<WordT>::IsFill(w)) return Traits<WordT>::FillBit(w);
      return (w >> (index - bit_pos)) & 1;
    }
    bit_pos += span;
  }
  return (active_word_ >> (index - bit_pos)) & 1;
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::SizeInBytes() const {
  return (code_words().size() + (active_bits_ > 0 ? 1 : 0)) * sizeof(WordT);
}

template <typename WordT>
double BasicWahBitVector<WordT>::CompressionRatio() const {
  if (size_ == 0) return 0.0;
  const double verbatim_bytes = static_cast<double>(size_) / 8.0;
  return static_cast<double>(SizeInBytes()) / verbatim_bytes;
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::And(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kAnd);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Or(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kOr);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Xor(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kXor);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::AndNot(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kAndNot);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::BinaryOp(
    const BasicWahBitVector& other, OpKind op) const {
  INCDB_CHECK(size_ == other.size_);
  const int op_code = static_cast<int>(op);
  BasicWahBitVector out;
  BasicWahRunIterator<WordT> a(*this);
  BasicWahRunIterator<WordT> b(other);
  uint64_t groups_emitted = 0;
  while (!a.done() && !b.done()) {
    if (a.is_fill() && b.is_fill()) {
      const uint64_t n = std::min(a.groups_left(), b.groups_left());
      const WordT r = ApplyOp(a.LiteralView(), b.LiteralView(), op_code);
      out.EmitFill(r == Traits<WordT>::kFullLiteral, n);
      groups_emitted += n;
      a.Consume(n);
      b.Consume(n);
    } else {
      // At least one side is a literal; process one group.
      const WordT r = ApplyOp(a.LiteralView(), b.LiteralView(), op_code);
      if (r == 0) {
        out.EmitFill(false, 1);
      } else if (r == Traits<WordT>::kFullLiteral) {
        out.EmitFill(true, 1);
      } else {
        out.EmitLiteral(r);
      }
      ++groups_emitted;
      a.Consume(1);
      b.Consume(1);
    }
  }
  INCDB_CHECK(a.done() && b.done());
  out.size_ = groups_emitted * kGroupBits;
  // Partial trailing group: sizes are equal, so active_bits_ match.
  INCDB_CHECK(active_bits_ == other.active_bits_);
  if (active_bits_ > 0) {
    const WordT mask = static_cast<WordT>(bitutil::LowBitsMask(active_bits_));
    out.active_word_ =
        ApplyOp(active_word_, other.active_word_, op_code) & mask;
    out.active_bits_ = active_bits_;
    out.size_ += static_cast<uint64_t>(active_bits_);
  }
  INCDB_CHECK(out.size_ == size_);
  return out;
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::FuseToVector(
    std::span<const Operand> operands, bool is_or) {
  INCDB_CHECK(!operands.empty());
  const BasicWahBitVector& first = *operands[0].vec;
  for (const Operand& op : operands) {
    INCDB_CHECK(op.vec != nullptr && op.vec->size_ == first.size_);
  }
  if (operands.size() == 1 && !operands[0].negate) return first;
  if (operands.size() == 2 && !operands[0].negate && !operands[1].negate) {
    // The tight two-way merge; the k-way machinery has nothing to add.
    return is_or ? first.Or(*operands[1].vec) : first.And(*operands[1].vec);
  }
  BasicWahBitVector out;
  if (is_or) {
    // Scatter every operand into a verbatim group accumulator, then
    // compress the accumulator once (rationale at ScatterOrWords).
    const uint64_t groups =
        (first.size_ - first.active_bits_) / static_cast<uint64_t>(kGroupBits);
    std::vector<WordT> buf(groups, WordT{0});
    for (const Operand& op : operands) {
      ScatterOrWords<WordT>(op.vec->code_words(), op.negate, buf);
    }
    uint64_t i = 0;
    while (i < groups) {
      const WordT v = buf[i];
      if (v == 0 || v == Traits<WordT>::kFullLiteral) {
        uint64_t j = i + 1;
        while (j < groups && buf[j] == v) ++j;
        out.EmitFill(v != 0, j - i);
        i = j;
      } else {
        out.EmitLiteral(v);
        ++i;
      }
    }
    out.size_ = groups * static_cast<uint64_t>(kGroupBits);
    if (first.active_bits_ > 0) {
      const WordT mask =
          static_cast<WordT>(bitutil::LowBitsMask(first.active_bits_));
      WordT acc = 0;
      for (const Operand& op : operands) {
        acc |= ActiveView<WordT>(op, op.vec->active_word_, mask);
      }
      out.active_word_ = acc;
      out.active_bits_ = first.active_bits_;
      out.size_ += static_cast<uint64_t>(first.active_bits_);
    }
    INCDB_CHECK(out.size_ == first.size_);
    return out;
  }
  const uint64_t groups = FuseMany<WordT>(
      operands, is_or, [&out](WordT view, uint64_t n) {
        if (view == 0) {
          out.EmitFill(false, n);
        } else if (view == Traits<WordT>::kFullLiteral) {
          out.EmitFill(true, n);
        } else {
          INCDB_DCHECK(n == 1);
          out.EmitLiteral(view);
        }
      });
  out.size_ = groups * static_cast<uint64_t>(kGroupBits);
  if (first.active_bits_ > 0) {
    const WordT mask =
        static_cast<WordT>(bitutil::LowBitsMask(first.active_bits_));
    WordT acc = is_or ? WordT{0} : mask;
    for (const Operand& op : operands) {
      const WordT v = ActiveView<WordT>(op, op.vec->active_word_, mask);
      acc = is_or ? static_cast<WordT>(acc | v) : static_cast<WordT>(acc & v);
    }
    out.active_word_ = acc;
    out.active_bits_ = first.active_bits_;
    out.size_ += static_cast<uint64_t>(first.active_bits_);
  }
  INCDB_CHECK(out.size_ == first.size_);
  return out;
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::FuseToCount(
    std::span<const Operand> operands, bool is_or) {
  INCDB_CHECK(!operands.empty());
  const BasicWahBitVector& first = *operands[0].vec;
  for (const Operand& op : operands) {
    INCDB_CHECK(op.vec != nullptr && op.vec->size_ == first.size_);
  }
  uint64_t count = 0;
  if (is_or && operands.size() > 2) {
    // Same verbatim-accumulator strategy as the OR vector kernel, with a
    // popcount pass in place of recompression.
    const uint64_t groups =
        (first.size_ - first.active_bits_) / static_cast<uint64_t>(kGroupBits);
    std::vector<WordT> buf(groups, WordT{0});
    for (const Operand& op : operands) {
      ScatterOrWords<WordT>(op.vec->code_words(), op.negate, buf);
    }
    for (WordT v : buf) count += static_cast<uint64_t>(std::popcount(v));
  } else {
    FuseMany<WordT>(operands, is_or, [&count](WordT view, uint64_t n) {
      count += static_cast<uint64_t>(std::popcount(view)) * n;
    });
  }
  if (first.active_bits_ > 0) {
    const WordT mask =
        static_cast<WordT>(bitutil::LowBitsMask(first.active_bits_));
    WordT acc = is_or ? WordT{0} : mask;
    for (const Operand& op : operands) {
      const WordT v = ActiveView<WordT>(op, op.vec->active_word_, mask);
      acc = is_or ? static_cast<WordT>(acc | v) : static_cast<WordT>(acc & v);
    }
    count += static_cast<uint64_t>(std::popcount(acc));
  }
  return count;
}

namespace {

template <typename WordT>
std::vector<typename BasicWahBitVector<WordT>::Operand> PlainOperands(
    std::span<const BasicWahBitVector<WordT>* const> operands) {
  std::vector<typename BasicWahBitVector<WordT>::Operand> ops;
  ops.reserve(operands.size());
  for (const BasicWahBitVector<WordT>* vec : operands) {
    ops.push_back({vec, false});
  }
  return ops;
}

}  // namespace

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::OrMany(
    std::span<const BasicWahBitVector* const> operands) {
  const auto ops = PlainOperands<WordT>(operands);
  return FuseToVector(ops, /*is_or=*/true);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::AndMany(
    std::span<const BasicWahBitVector* const> operands) {
  const auto ops = PlainOperands<WordT>(operands);
  return FuseToVector(ops, /*is_or=*/false);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::AndMany(
    std::span<const Operand> operands) {
  return FuseToVector(operands, /*is_or=*/false);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::OrManyCount(
    std::span<const BasicWahBitVector* const> operands) {
  const auto ops = PlainOperands<WordT>(operands);
  return FuseToCount(ops, /*is_or=*/true);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::AndManyCount(
    std::span<const BasicWahBitVector* const> operands) {
  const auto ops = PlainOperands<WordT>(operands);
  return FuseToCount(ops, /*is_or=*/false);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::AndManyCount(
    std::span<const Operand> operands) {
  return FuseToCount(operands, /*is_or=*/false);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::AndCount(const BasicWahBitVector& a,
                                            const BasicWahBitVector& b) {
  const Operand ops[] = {{&a, false}, {&b, false}};
  return FuseToCount(ops, /*is_or=*/false);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Not() const {
  BasicWahBitVector out;
  for (WordT w : code_words()) {
    if (Traits<WordT>::IsFill(w)) {
      out.EmitFill(!Traits<WordT>::FillBit(w), Traits<WordT>::FillGroups(w));
    } else {
      const WordT lit = ~w & Traits<WordT>::kFullLiteral;
      if (lit == 0) {
        out.EmitFill(false, 1);
      } else if (lit == Traits<WordT>::kFullLiteral) {
        out.EmitFill(true, 1);
      } else {
        out.EmitLiteral(lit);
      }
    }
  }
  out.size_ = size_ - static_cast<uint64_t>(active_bits_);
  if (active_bits_ > 0) {
    const WordT mask = static_cast<WordT>(bitutil::LowBitsMask(active_bits_));
    out.active_word_ = ~active_word_ & mask;
    out.active_bits_ = active_bits_;
    out.size_ += static_cast<uint64_t>(active_bits_);
  }
  return out;
}

template <typename WordT>
std::string BasicWahBitVector<WordT>::DebugString() const {
  std::string out;
  for (WordT w : code_words()) {
    if (Traits<WordT>::IsFill(w)) {
      out += "F";
      out += Traits<WordT>::FillBit(w) ? '1' : '0';
      out += 'x';
      out += std::to_string(Traits<WordT>::FillGroups(w));
      out += ' ';
    } else {
      out += "L:";
      for (int i = 0; i < kGroupBits; ++i) {
        out += ((w >> i) & 1) ? '1' : '0';
      }
      out += " ";
    }
  }
  if (active_bits_ > 0) {
    out += "A:";
    for (int i = 0; i < active_bits_; ++i) {
      out += ((active_word_ >> i) & 1) ? '1' : '0';
    }
  }
  return out;
}

template <typename WordT>
Result<BasicWahBitVector<WordT>> BasicWahBitVector<WordT>::FromBorrowed(
    std::span<const WordT> words, WordT active_word, int active_bits,
    uint64_t size) {
  if (active_bits < 0 || active_bits >= kGroupBits) {
    return Status::IOError("borrowed WAH vector: active_bits out of range");
  }
  if ((active_word &
       ~static_cast<WordT>(bitutil::LowBitsMask(active_bits))) != 0) {
    return Status::IOError("borrowed WAH vector: active word has stray bits");
  }
  if (size < static_cast<uint64_t>(active_bits)) {
    return Status::IOError("borrowed WAH vector: size below active bits");
  }
  BasicWahBitVector out;
  out.borrowed_words_ = words.data();
  out.num_borrowed_ = words.size();
  out.active_word_ = active_word;
  out.active_bits_ = active_bits;
  out.size_ = size;
  return out;
}

template <typename WordT>
Status BasicWahBitVector<WordT>::ValidateStructure() const {
  // Reject the moment the running total exceeds what `size_` allows:
  // adversarial fill counts must not be able to wrap the uint64 sum and
  // sneak a too-long vector past the final equality check. Each fill word
  // contributes well under 2^63 groups, and the bound itself is at most
  // 2^64 / kGroupBits, so `groups` can never overflow before the check.
  const uint64_t max_groups = size_ / kGroupBits + 1;
  uint64_t groups = 0;
  for (WordT w : code_words()) {
    groups += Traits<WordT>::IsFill(w) ? Traits<WordT>::FillGroups(w) : 1;
    if (groups > max_groups) {
      return Status::IOError("WAH vector: decoded group count does not "
                             "match declared size");
    }
  }
  if (groups * kGroupBits + static_cast<uint64_t>(active_bits_) != size_) {
    return Status::IOError("WAH vector: decoded group count does not match "
                           "declared size");
  }
  return Status::OK();
}

template <typename WordT>
void BasicWahBitVector<WordT>::Detach() {
  if (!borrowed()) return;
  words_.assign(borrowed_words_, borrowed_words_ + num_borrowed_);
  borrowed_words_ = nullptr;
  num_borrowed_ = 0;
}

template <typename WordT>
void BasicWahBitVector<WordT>::SaveTo(BinaryWriter& writer) const {
  writer.WriteU64(size_);
  writer.WriteU32(static_cast<uint32_t>(active_bits_));
  WriteWord(writer, active_word_);
  const std::span<const WordT> words = code_words();
  writer.WriteU64(words.size());
  for (WordT word : words) WriteWord(writer, word);
}

template <typename WordT>
Result<BasicWahBitVector<WordT>> BasicWahBitVector<WordT>::LoadFrom(
    BinaryReader& reader) {
  BasicWahBitVector out;
  INCDB_ASSIGN_OR_RETURN(out.size_, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint32_t active_bits, reader.ReadU32());
  if (active_bits >= static_cast<uint32_t>(kGroupBits)) {
    return Status::IOError("corrupted WAH payload: active_bits out of range");
  }
  out.active_bits_ = static_cast<int>(active_bits);
  INCDB_RETURN_IF_ERROR(ReadWord(reader, &out.active_word_));
  if ((out.active_word_ &
       ~static_cast<WordT>(bitutil::LowBitsMask(out.active_bits_))) != 0) {
    return Status::IOError(
        "corrupted WAH payload: active word has stray bits");
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t num_words, reader.ReadU64());
  if (num_words > (uint64_t{1} << 40)) {
    return Status::IOError("corrupted WAH payload: implausible word count");
  }
  out.words_.resize(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    INCDB_RETURN_IF_ERROR(ReadWord(reader, &out.words_[i]));
  }
  // Cross-check the declared size against the decoded group count.
  uint64_t groups = 0;
  for (WordT w : out.words_) {
    groups += Traits<WordT>::IsFill(w) ? Traits<WordT>::FillGroups(w) : 1;
  }
  if (groups * kGroupBits + static_cast<uint64_t>(out.active_bits_) !=
      out.size_) {
    return Status::IOError("corrupted WAH payload: size mismatch");
  }
  return out;
}

template class BasicWahBitVector<uint32_t>;
template class BasicWahBitVector<uint64_t>;

}  // namespace incdb
