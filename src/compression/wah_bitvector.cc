#include "compression/wah_bitvector.h"

#include <algorithm>
#include <bit>

#include "common/bitutil.h"
#include "common/logging.h"

namespace incdb {

namespace {

// Per-word-type constants. With W = bits per word: the top bit flags a
// fill, the next bit is the fill value, the remaining W-2 bits count fill
// groups of W-1 bits each.
template <typename WordT>
struct WahTraits {
  static constexpr int kWordBits = static_cast<int>(sizeof(WordT) * 8);
  static constexpr int kGroupBits = kWordBits - 1;
  static constexpr WordT kFillFlag = WordT{1} << (kWordBits - 1);
  static constexpr WordT kFillBitFlag = WordT{1} << (kWordBits - 2);
  static constexpr WordT kFillCountMask = kFillBitFlag - 1;
  static constexpr uint64_t kMaxFillGroups = kFillCountMask;
  static constexpr WordT kFullLiteral = kFillFlag - 1;

  static bool IsFill(WordT word) { return (word & kFillFlag) != 0; }
  static bool FillBit(WordT word) { return (word & kFillBitFlag) != 0; }
  static uint64_t FillGroups(WordT word) { return word & kFillCountMask; }
  static WordT MakeFill(bool bit, uint64_t groups) {
    return kFillFlag | (bit ? kFillBitFlag : WordT{0}) |
           static_cast<WordT>(groups & kFillCountMask);
  }
};

// Sequential decoder over the full (group-aligned) part of a WAH vector.
// Presents the stream as a sequence of runs; a literal is a run of one
// group.
template <typename WordT>
class Decoder {
  using Traits = WahTraits<WordT>;

 public:
  explicit Decoder(const std::vector<WordT>& words) : words_(words), pos_(0) {
    Load();
  }

  bool done() const { return groups_left_ == 0 && pos_ >= words_.size(); }

  bool is_fill() const { return is_fill_; }
  bool fill_bit() const { return fill_bit_; }
  uint64_t groups_left() const { return groups_left_; }

  // The current run viewed as a literal word (fills expand to 0/all-ones).
  WordT LiteralView() const {
    if (!is_fill_) return literal_;
    return fill_bit_ ? Traits::kFullLiteral : WordT{0};
  }

  // Consumes n groups from the current run (n <= groups_left()).
  void Consume(uint64_t n) {
    INCDB_DCHECK(n <= groups_left_);
    groups_left_ -= n;
    if (groups_left_ == 0) Load();
  }

 private:
  void Load() {
    while (pos_ < words_.size()) {
      const WordT w = words_[pos_++];
      if (Traits::IsFill(w)) {
        const uint64_t n = Traits::FillGroups(w);
        if (n == 0) continue;  // defensive: skip empty fills
        is_fill_ = true;
        fill_bit_ = Traits::FillBit(w);
        groups_left_ = n;
        return;
      }
      is_fill_ = false;
      literal_ = w;
      groups_left_ = 1;
      return;
    }
    groups_left_ = 0;
  }

  const std::vector<WordT>& words_;
  size_t pos_;
  bool is_fill_ = false;
  bool fill_bit_ = false;
  WordT literal_ = 0;
  uint64_t groups_left_ = 0;
};

template <typename WordT>
WordT ApplyOp(WordT a, WordT b, int op) {
  switch (op) {
    case 0:
      return a & b;
    case 1:
      return a | b;
    case 2:
      return a ^ b;
    default:
      return a & (~b & WahTraits<WordT>::kFullLiteral);
  }
}

// Word-width-dispatched scalar I/O for serialization.
void WriteWord(BinaryWriter& writer, uint32_t word) { writer.WriteU32(word); }
void WriteWord(BinaryWriter& writer, uint64_t word) { writer.WriteU64(word); }
Status ReadWord(BinaryReader& reader, uint32_t* word) {
  INCDB_ASSIGN_OR_RETURN(*word, reader.ReadU32());
  return Status::OK();
}
Status ReadWord(BinaryReader& reader, uint64_t* word) {
  INCDB_ASSIGN_OR_RETURN(*word, reader.ReadU64());
  return Status::OK();
}

}  // namespace

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Compress(
    const BitVector& bits) {
  using Traits = WahTraits<WordT>;
  BasicWahBitVector out;
  const uint64_t n = bits.size();
  const std::vector<uint64_t>& words = bits.words();
  // Extract consecutive (W-1)-bit groups from the 64-bit word array.
  const uint64_t full_groups = n / kGroupBits;
  for (uint64_t g = 0; g < full_groups; ++g) {
    const uint64_t bit_pos = g * kGroupBits;
    const uint64_t word_idx = bit_pos / 64;
    const int offset = static_cast<int>(bit_pos % 64);
    uint64_t chunk = words[word_idx] >> offset;
    if (offset + kGroupBits > 64 && word_idx + 1 < words.size()) {
      chunk |= words[word_idx + 1] << (64 - offset);
    }
    const WordT literal =
        static_cast<WordT>(chunk & bitutil::LowBitsMask(kGroupBits));
    if (literal == 0) {
      out.EmitFill(false, 1);
    } else if (literal == Traits::kFullLiteral) {
      out.EmitFill(true, 1);
    } else {
      out.EmitLiteral(literal);
    }
  }
  out.size_ = full_groups * kGroupBits;
  // Trailing partial group into the active word.
  for (uint64_t i = full_groups * kGroupBits; i < n; ++i) {
    out.AppendBit(bits.Get(i));
  }
  return out;
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Fill(uint64_t size,
                                                        bool bit) {
  BasicWahBitVector out;
  out.AppendRun(bit, size);
  return out;
}

template <typename WordT>
void BasicWahBitVector<WordT>::AppendBit(bool bit) {
  if (bit) active_word_ |= WordT{1} << active_bits_;
  ++active_bits_;
  ++size_;
  if (active_bits_ == kGroupBits) FlushActiveGroup();
}

template <typename WordT>
void BasicWahBitVector<WordT>::AppendRun(bool bit, uint64_t count) {
  // Align to a group boundary first.
  while (count > 0 && active_bits_ != 0) {
    AppendBit(bit);
    --count;
  }
  const uint64_t groups = count / kGroupBits;
  if (groups > 0) {
    EmitFill(bit, groups);
    size_ += groups * kGroupBits;
    count -= groups * kGroupBits;
  }
  while (count > 0) {
    AppendBit(bit);
    --count;
  }
}

template <typename WordT>
void BasicWahBitVector<WordT>::FlushActiveGroup() {
  using Traits = WahTraits<WordT>;
  INCDB_DCHECK(active_bits_ == kGroupBits);
  if (active_word_ == 0) {
    EmitFill(false, 1);
  } else if (active_word_ == Traits::kFullLiteral) {
    EmitFill(true, 1);
  } else {
    EmitLiteral(active_word_);
  }
  active_word_ = 0;
  active_bits_ = 0;
}

template <typename WordT>
void BasicWahBitVector<WordT>::EmitFill(bool bit, uint64_t groups) {
  using Traits = WahTraits<WordT>;
  while (groups > 0) {
    if (!words_.empty() && Traits::IsFill(words_.back()) &&
        Traits::FillBit(words_.back()) == bit) {
      const uint64_t have = Traits::FillGroups(words_.back());
      const uint64_t take = std::min(groups, Traits::kMaxFillGroups - have);
      if (take > 0) {
        words_.back() = Traits::MakeFill(bit, have + take);
        groups -= take;
        continue;
      }
    }
    const uint64_t take = std::min(groups, Traits::kMaxFillGroups);
    words_.push_back(Traits::MakeFill(bit, take));
    groups -= take;
  }
}

template <typename WordT>
void BasicWahBitVector<WordT>::EmitLiteral(WordT literal) {
  INCDB_DCHECK((literal & WahTraits<WordT>::kFillFlag) == 0);
  words_.push_back(literal);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::Count() const {
  using Traits = WahTraits<WordT>;
  uint64_t count = 0;
  for (WordT w : words_) {
    if (Traits::IsFill(w)) {
      if (Traits::FillBit(w)) count += Traits::FillGroups(w) * kGroupBits;
    } else {
      count += static_cast<uint64_t>(std::popcount(w));
    }
  }
  count += static_cast<uint64_t>(std::popcount(active_word_));
  return count;
}

template <typename WordT>
BitVector BasicWahBitVector<WordT>::Decompress() const {
  using Traits = WahTraits<WordT>;
  BitVector out(size_);
  uint64_t bit_pos = 0;
  auto write_literal = [&](WordT lit) {
    for (WordT w = lit; w != 0; w &= w - 1) {
      out.Set(bit_pos + static_cast<uint64_t>(std::countr_zero(w)));
    }
    bit_pos += kGroupBits;
  };
  for (WordT w : words_) {
    if (Traits::IsFill(w)) {
      const uint64_t groups = Traits::FillGroups(w);
      if (Traits::FillBit(w)) {
        for (uint64_t i = 0; i < groups * kGroupBits; ++i) {
          out.Set(bit_pos + i);
        }
      }
      bit_pos += groups * kGroupBits;
    } else {
      write_literal(w);
    }
  }
  for (int i = 0; i < active_bits_; ++i) {
    if ((active_word_ >> i) & 1) out.Set(bit_pos + i);
  }
  return out;
}

template <typename WordT>
bool BasicWahBitVector<WordT>::Get(uint64_t index) const {
  using Traits = WahTraits<WordT>;
  INCDB_CHECK(index < size_);
  uint64_t bit_pos = 0;
  for (WordT w : words_) {
    const uint64_t span = Traits::IsFill(w)
                              ? Traits::FillGroups(w) * kGroupBits
                              : static_cast<uint64_t>(kGroupBits);
    if (index < bit_pos + span) {
      if (Traits::IsFill(w)) return Traits::FillBit(w);
      return (w >> (index - bit_pos)) & 1;
    }
    bit_pos += span;
  }
  return (active_word_ >> (index - bit_pos)) & 1;
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::SizeInBytes() const {
  return (words_.size() + (active_bits_ > 0 ? 1 : 0)) * sizeof(WordT);
}

template <typename WordT>
double BasicWahBitVector<WordT>::CompressionRatio() const {
  if (size_ == 0) return 0.0;
  const double verbatim_bytes = static_cast<double>(size_) / 8.0;
  return static_cast<double>(SizeInBytes()) / verbatim_bytes;
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::And(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kAnd);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Or(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kOr);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Xor(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kXor);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::AndNot(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kAndNot);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::BinaryOp(
    const BasicWahBitVector& other, OpKind op) const {
  using Traits = WahTraits<WordT>;
  INCDB_CHECK(size_ == other.size_);
  const int op_code = static_cast<int>(op);
  BasicWahBitVector out;
  Decoder<WordT> a(words_);
  Decoder<WordT> b(other.words_);
  uint64_t groups_emitted = 0;
  while (!a.done() && !b.done()) {
    if (a.is_fill() && b.is_fill()) {
      const uint64_t n = std::min(a.groups_left(), b.groups_left());
      const WordT va = a.fill_bit() ? Traits::kFullLiteral : WordT{0};
      const WordT vb = b.fill_bit() ? Traits::kFullLiteral : WordT{0};
      const WordT r = ApplyOp(va, vb, op_code);
      out.EmitFill(r == Traits::kFullLiteral, n);
      groups_emitted += n;
      a.Consume(n);
      b.Consume(n);
    } else {
      // At least one side is a literal; process one group.
      const WordT r = ApplyOp(a.LiteralView(), b.LiteralView(), op_code);
      if (r == 0) {
        out.EmitFill(false, 1);
      } else if (r == Traits::kFullLiteral) {
        out.EmitFill(true, 1);
      } else {
        out.EmitLiteral(r);
      }
      ++groups_emitted;
      a.Consume(1);
      b.Consume(1);
    }
  }
  INCDB_CHECK(a.done() && b.done());
  out.size_ = groups_emitted * kGroupBits;
  // Partial trailing group: sizes are equal, so active_bits_ match.
  INCDB_CHECK(active_bits_ == other.active_bits_);
  if (active_bits_ > 0) {
    const WordT mask = static_cast<WordT>(bitutil::LowBitsMask(active_bits_));
    out.active_word_ =
        ApplyOp(active_word_, other.active_word_, op_code) & mask;
    out.active_bits_ = active_bits_;
    out.size_ += static_cast<uint64_t>(active_bits_);
  }
  INCDB_CHECK(out.size_ == size_);
  return out;
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Not() const {
  using Traits = WahTraits<WordT>;
  BasicWahBitVector out;
  for (WordT w : words_) {
    if (Traits::IsFill(w)) {
      out.EmitFill(!Traits::FillBit(w), Traits::FillGroups(w));
    } else {
      const WordT lit = ~w & Traits::kFullLiteral;
      if (lit == 0) {
        out.EmitFill(false, 1);
      } else if (lit == Traits::kFullLiteral) {
        out.EmitFill(true, 1);
      } else {
        out.EmitLiteral(lit);
      }
    }
  }
  out.size_ = size_ - static_cast<uint64_t>(active_bits_);
  if (active_bits_ > 0) {
    const WordT mask = static_cast<WordT>(bitutil::LowBitsMask(active_bits_));
    out.active_word_ = ~active_word_ & mask;
    out.active_bits_ = active_bits_;
    out.size_ += static_cast<uint64_t>(active_bits_);
  }
  return out;
}

template <typename WordT>
std::string BasicWahBitVector<WordT>::DebugString() const {
  using Traits = WahTraits<WordT>;
  std::string out;
  for (WordT w : words_) {
    if (Traits::IsFill(w)) {
      out += "F";
      out += Traits::FillBit(w) ? '1' : '0';
      out += "x" + std::to_string(Traits::FillGroups(w)) + " ";
    } else {
      out += "L:";
      for (int i = 0; i < kGroupBits; ++i) {
        out += ((w >> i) & 1) ? '1' : '0';
      }
      out += " ";
    }
  }
  if (active_bits_ > 0) {
    out += "A:";
    for (int i = 0; i < active_bits_; ++i) {
      out += ((active_word_ >> i) & 1) ? '1' : '0';
    }
  }
  return out;
}

template <typename WordT>
void BasicWahBitVector<WordT>::SaveTo(BinaryWriter& writer) const {
  writer.WriteU64(size_);
  writer.WriteU32(static_cast<uint32_t>(active_bits_));
  WriteWord(writer, active_word_);
  writer.WriteU64(words_.size());
  for (WordT word : words_) WriteWord(writer, word);
}

template <typename WordT>
Result<BasicWahBitVector<WordT>> BasicWahBitVector<WordT>::LoadFrom(
    BinaryReader& reader) {
  using Traits = WahTraits<WordT>;
  BasicWahBitVector out;
  INCDB_ASSIGN_OR_RETURN(out.size_, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint32_t active_bits, reader.ReadU32());
  if (active_bits >= static_cast<uint32_t>(kGroupBits)) {
    return Status::IOError("corrupted WAH payload: active_bits out of range");
  }
  out.active_bits_ = static_cast<int>(active_bits);
  INCDB_RETURN_IF_ERROR(ReadWord(reader, &out.active_word_));
  if ((out.active_word_ &
       ~static_cast<WordT>(bitutil::LowBitsMask(out.active_bits_))) != 0) {
    return Status::IOError(
        "corrupted WAH payload: active word has stray bits");
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t num_words, reader.ReadU64());
  if (num_words > (uint64_t{1} << 40)) {
    return Status::IOError("corrupted WAH payload: implausible word count");
  }
  out.words_.resize(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    INCDB_RETURN_IF_ERROR(ReadWord(reader, &out.words_[i]));
  }
  // Cross-check the declared size against the decoded group count.
  uint64_t groups = 0;
  for (WordT w : out.words_) {
    groups += Traits::IsFill(w) ? Traits::FillGroups(w) : 1;
  }
  if (groups * kGroupBits + static_cast<uint64_t>(out.active_bits_) !=
      out.size_) {
    return Status::IOError("corrupted WAH payload: size mismatch");
  }
  return out;
}

template class BasicWahBitVector<uint32_t>;
template class BasicWahBitVector<uint64_t>;

}  // namespace incdb
