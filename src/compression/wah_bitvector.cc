#include "compression/wah_bitvector.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>

#include "common/bitutil.h"
#include "common/logging.h"

namespace incdb {

namespace wah_internal {
namespace {

// Default dense-block threshold, in literal groups per operand-group: the
// measured crossover from bench_simd_kernels (derivation in
// docs/KERNELS.md) below which run-at-a-time merging over the compressed
// form beats stream-combining through the vector kernels. Uniform 5%-bit
// inputs (~0.8 literal fraction) win on the dense path at every level and
// k; clustered 1% inputs (~0.03) win on the sparse strategies; the
// break-even sits near the cost ratio of a scatter store vs its share of a
// kernel pass, ~0.1-0.2 on both tested word widths. Overridable via
// INCDB_DENSE_THRESHOLD (<=0 forces dense, >1 disables the dense path).
constexpr double kDefaultDenseBlockThreshold = 0.15;

std::atomic<double>& ThresholdStorage() {
  static std::atomic<double> threshold{[] {
    const char* env = std::getenv("INCDB_DENSE_THRESHOLD");
    if (env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      const double parsed = std::strtod(env, &end);
      if (end != env) return parsed;
    }
    return kDefaultDenseBlockThreshold;
  }()};
  return threshold;
}

}  // namespace

double DenseBlockThreshold() {
  return ThresholdStorage().load(std::memory_order_relaxed);
}

double SetDenseBlockThresholdForTesting(double threshold) {
  return ThresholdStorage().exchange(threshold, std::memory_order_relaxed);
}

}  // namespace wah_internal

namespace {

template <typename WordT>
using Traits = wah_internal::WahTraits<WordT>;

template <typename WordT>
WordT ApplyOp(WordT a, WordT b, int op) {
  switch (op) {
    case 0:
      return a & b;
    case 1:
      return a | b;
    case 2:
      return a ^ b;
    default:
      return a & (~b & Traits<WordT>::kFullLiteral);
  }
}

// Per-operand view of the partial trailing group.
template <typename WordT>
WordT ActiveView(const typename BasicWahBitVector<WordT>::Operand& op,
                 WordT active_word, WordT mask) {
  const WordT v = op.negate ? static_cast<WordT>(~active_word) : active_word;
  return v & mask;
}

// ---------------------------------------------------------------------------
// The windowed hybrid k-way fusion engine.
//
// The stream of groups is processed in fixed windows of kWindowGroups groups
// (64 Ki payload bits, so the accumulator and scratch buffers stay resident
// in L1/L2). Each window is classified by an estimate of the operands'
// literal density (seeded from compressed size, then carried forward from
// the density the previous window actually saw — see FuseHybrid); windows
// at or above wah_internal::DenseBlockThreshold() take the dense path —
// materialize the lead operand and stream the rest's literal runs straight
// from their compressed form into the runtime-dispatched SIMD kernels —
// while sparse windows stay on compressed-form strategies:
//  * OR: scatter each operand's runs into the zeroed accumulator (one store
//    per literal, one fill per 1-run), then hand the window to the sink;
//  * AND: the classic lockstep run merge with absorbing-fill leaps, which
//    skips whole 0-fill runs without touching the other operands' payloads.
//
// All decoded buffers hold one group per WordT with the fill-flag MSB zero,
// so combines can never produce a word the re-encode scan would mistake for
// a fill code word.
// ---------------------------------------------------------------------------

template <typename WordT>
constexpr uint64_t kWindowGroups =
    uint64_t{65536} / static_cast<uint64_t>(Traits<WordT>::kGroupBits);

// The kFullLiteral pattern replicated across a 64-bit lane, for masked
// OR-NOT combines (keeps complemented group words' fill flags clear).
template <typename WordT>
constexpr uint64_t ReplicatedFullLiteral() {
  if constexpr (sizeof(WordT) == 4) {
    return (uint64_t{Traits<WordT>::kFullLiteral} << 32) |
           uint64_t{Traits<WordT>::kFullLiteral};
  } else {
    return uint64_t{Traits<WordT>::kFullLiteral};
  }
}

// Decodes the next `w` groups of one operand into `buf`, one group word per
// slot (fill-flag MSB always zero). Consecutive literal code words are
// adjacent in the compressed stream, so literal runs bulk-copy. Returns the
// number of literal groups decoded (feeds the density estimate).
template <typename WordT>
uint64_t DecodeWindow(BasicWahRunIterator<WordT>& it, WordT* buf, uint64_t w) {
  uint64_t pos = 0;
  uint64_t literals = 0;
  while (pos < w) {
    if (it.is_fill()) {
      const uint64_t n = std::min(it.groups_left(), w - pos);
      std::fill_n(buf + pos,
                  n, it.fill_bit() ? Traits<WordT>::kFullLiteral : WordT{0});
      it.Consume(n);
      pos += n;
    } else {
      const uint64_t n = it.CopyLiteralRun(buf + pos, w - pos);
      literals += n;
      pos += n;
    }
  }
  return literals;
}

struct CombineResult {
  uint64_t literals = 0;  // literal groups consumed (density estimate feed)
  uint64_t any = 0;       // OR-fold of every accumulator word this operand
                          // wrote (AND only)
  bool covered = true;    // every window group was written by this operand;
                          // false once a stretch was left untouched (an
                          // AND 1-fill), making `any` a lower bound only
};

// Combines the next `w` groups of one operand into `acc` straight from the
// compressed stream: fills are O(1) skips or bulk std::fill_n, literal runs
// feed the SIMD kernels directly (a literal code word IS its decoded group
// word), so no scratch buffer is ever materialized. Short literal runs are
// folded inline — an indirect kernel call per 1-2-word run would cost more
// than the combine itself. For AND ops the result's `any`/`covered` pair
// answers "is the accumulator now provably all-zero?" without any rescan.
template <typename WordT>
CombineResult CombineWindow(BasicWahRunIterator<WordT>& it, WordT* acc,
                            uint64_t w, bool is_or, bool negate,
                            const simd::Kernels& kernels) {
  const WordT kFull = Traits<WordT>::kFullLiteral;
  constexpr uint64_t kInlineRun = 16;
  CombineResult result;
  uint64_t pos = 0;
  while (pos < w) {
    if (it.is_fill()) {
      const uint64_t n = std::min(it.groups_left(), w - pos);
      const bool bit = it.fill_bit() != negate;
      if (is_or) {
        if (bit) std::fill_n(acc + pos, n, kFull);
      } else {
        if (!bit) {
          std::fill_n(acc + pos, n, WordT{0});
        } else {
          result.covered = false;  // acc unchanged here, contents unknown
        }
      }
      it.Consume(n);
      pos += n;
    } else {
      uint64_t n = 0;
      const WordT* run = it.ViewLiteralRun(w - pos, &n);
      WordT* dst = acc + pos;
      if (n < kInlineRun) {
        uint64_t any = 0;
        if (is_or) {
          if (negate) {
            for (uint64_t i = 0; i < n; ++i) {
              dst[i] = static_cast<WordT>(dst[i] | (~run[i] & kFull));
            }
          } else {
            for (uint64_t i = 0; i < n; ++i) dst[i] |= run[i];
          }
        } else {
          if (negate) {
            for (uint64_t i = 0; i < n; ++i) {
              dst[i] = static_cast<WordT>(dst[i] & ~run[i]);
              any |= dst[i];
            }
          } else {
            for (uint64_t i = 0; i < n; ++i) {
              dst[i] &= run[i];
              any |= dst[i];
            }
          }
        }
        result.any |= any;
      } else {
        const size_t bytes = static_cast<size_t>(n) * sizeof(WordT);
        if (is_or) {
          if (negate) {
            kernels.ornot_mask_into(dst, run, ReplicatedFullLiteral<WordT>(),
                                    bytes);
          } else {
            kernels.or_into(dst, run, bytes);
          }
        } else {
          if (negate) {
            result.any |= kernels.andnot_into(dst, run, bytes);
          } else {
            result.any |= kernels.and_into(dst, run, bytes);
          }
        }
      }
      result.literals += n;
      pos += n;
    }
  }
  return result;
}

// Dense window: decode the first non-negated operand into the accumulator,
// then stream-combine every other operand straight from its compressed
// form with the active SIMD kernel table. Negated operands are folded
// through AND-NOT / masked OR-NOT so their group words are never
// materialized in complemented form. Returns the literal density realized
// over the operand windows it actually walked (the next window's
// classification estimate).
template <typename WordT>
double DenseWindow(
    std::span<const typename BasicWahBitVector<WordT>::Operand> ops,
    std::vector<BasicWahRunIterator<WordT>>& its, bool is_or, uint64_t w,
    WordT* acc) {
  const simd::Kernels& kernels = simd::ActiveKernels();
  uint64_t literals = 0;
  uint64_t examined = 0;
  size_t lead = ops.size();
  for (size_t i = 0; i < ops.size(); ++i) {
    if (!ops[i].negate) {
      lead = i;
      break;
    }
  }
  if (lead < ops.size()) {
    literals += DecodeWindow(its[lead], acc, w);
    examined += w;
  } else {
    std::fill_n(acc, w, is_or ? WordT{0} : Traits<WordT>::kFullLiteral);
  }
  // AND early-exit: the CombineResult of each operand proves (or fails to
  // prove) the accumulator empty as a byproduct of the combine, so the
  // remaining operands only need their cursors advanced — no rescans.
  bool empty = false;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (i == lead) continue;
    if (empty) {
      its[i].Skip(w);
      continue;
    }
    const CombineResult r =
        CombineWindow(its[i], acc, w, is_or, ops[i].negate, kernels);
    literals += r.literals;
    examined += w;
    if (!is_or) empty = r.covered && r.any == 0;
  }
  return examined == 0
             ? 1.0
             : static_cast<double>(literals) / static_cast<double>(examined);
}

// Sparse OR window: scatter every operand's runs into the zeroed
// accumulator. One store per literal group, one std::fill_n per
// effective 1-fill; 0-runs cost nothing. Returns the realized literal
// density of the window (the next window's classification estimate).
template <typename WordT>
double ScatterOrWindow(
    std::span<const typename BasicWahBitVector<WordT>::Operand> ops,
    std::vector<BasicWahRunIterator<WordT>>& its, uint64_t w, WordT* acc) {
  const WordT kFull = Traits<WordT>::kFullLiteral;
  std::fill_n(acc, w, WordT{0});
  uint64_t literals = 0;
  for (size_t i = 0; i < ops.size(); ++i) {
    BasicWahRunIterator<WordT>& it = its[i];
    const bool negate = ops[i].negate;
    uint64_t pos = 0;
    while (pos < w) {
      if (it.is_fill()) {
        const uint64_t n = std::min(it.groups_left(), w - pos);
        if (it.fill_bit() != negate) std::fill_n(acc + pos, n, kFull);
        it.Consume(n);
        pos += n;
      } else {
        const WordT lit = it.LiteralView();
        acc[pos] |= negate ? static_cast<WordT>(~lit & kFull) : lit;
        ++literals;
        ++pos;
        it.Consume(1);
      }
    }
  }
  return static_cast<double>(literals) / static_cast<double>(w * ops.size());
}

// Sparse AND stretch: the lockstep run merge. Emits `emit_run(view, n)` for
// each maximal stretch of n groups with constant view (n > 1 only for fill
// output) until at least `limit` groups have been produced. Absorbing-fill
// leaps may overshoot the window boundary — that is deliberate: a long
// 0-fill should be jumped in one step, and the next window's classification
// simply happens wherever the cursors land. Returns the number of groups
// emitted; `*literal_groups` accumulates the operand literal words it
// stepped through (groups leapt over inside absorbing fills count as fills,
// biasing the density estimate low — exactly the windows this path wins on).
template <typename WordT, typename RunFn>
uint64_t SparseAndStretch(
    std::span<const typename BasicWahBitVector<WordT>::Operand> ops,
    std::vector<BasicWahRunIterator<WordT>>& its, uint64_t limit,
    RunFn&& emit_run, uint64_t* literal_groups) {
  const WordT kFull = Traits<WordT>::kFullLiteral;
  uint64_t emitted = 0;
  uint64_t literals = 0;  // local: a through-pointer count would alias
  while (emitted < limit && !its[0].done()) {
    WordT acc = kFull;
    uint64_t n_min = UINT64_MAX;
    uint64_t absorb = 0;
    bool all_fill = true;
    for (size_t i = 0; i < its.size(); ++i) {
      const BasicWahRunIterator<WordT>& it = its[i];
      WordT view = it.LiteralView();
      if (ops[i].negate) view = ~view & kFull;
      if (it.is_fill()) {
        if (view == 0) absorb = std::max(absorb, it.groups_left());
      } else {
        all_fill = false;
        ++literals;
      }
      if (it.groups_left() < n_min) n_min = it.groups_left();
      acc = static_cast<WordT>(acc & view);
      if (acc == 0) break;  // remaining operands cannot change it
    }
    uint64_t n;
    if (acc == 0) {
      n = absorb > 0 ? absorb : 1;
    } else {
      n = all_fill ? n_min : 1;
    }
    emit_run(acc, n);
    for (auto& it : its) it.Skip(n);
    emitted += n;
  }
  *literal_groups += literals;
  return emitted;
}

// Drives the full fusion: windows the group stream, classifies each window
// dense/sparse, and feeds results to the sinks. `emit_run(view, n)` receives
// constant-view stretches from the sparse AND path; `emit_dense(buf, w)`
// receives decoded window buffers from the dense and scatter-OR paths.
//
// Classification is adaptive and costs O(1) per window: the first window
// is classified from the operands' compressed sizes (code words per group
// is a direct proxy for literal density — a literal group costs one word,
// a fill amortizes to ~zero); every window after that is classified by the
// literal density the previous window realized while doing its real work
// (all three window routines report it as a near-free byproduct). On
// homogeneous inputs classification cost vanishes; on regime changes it
// mispredicts at most one window, which only costs a suboptimal strategy
// there, never a wrong answer.
template <typename WordT, typename RunFn, typename DenseFn>
void FuseHybrid(std::span<const typename BasicWahBitVector<WordT>::Operand> ops,
                bool is_or, uint64_t groups_total, RunFn&& emit_run,
                DenseFn&& emit_dense, WahOpStats* op_stats) {
  if (groups_total == 0) return;
  std::vector<BasicWahRunIterator<WordT>> its;
  its.reserve(ops.size());
  for (const auto& op : ops) its.emplace_back(*op.vec);
  const double threshold = wah_internal::DenseBlockThreshold();
  const bool dense_enabled = threshold <= 1.0;
  const bool force_dense = threshold <= 0.0;
  const uint64_t window = kWindowGroups<WordT>;
  std::vector<WordT> acc(std::min<uint64_t>(window, groups_total));
  uint64_t done = 0;
  double est_density = 0.0;
  if (dense_enabled && !force_dense) {
    uint64_t code_words = 0;
    for (const auto& op : ops) code_words += op.vec->NumWords();
    est_density = static_cast<double>(code_words) /
                  static_cast<double>(groups_total * ops.size());
  }
  while (done < groups_total) {
    const uint64_t w = std::min(window, groups_total - done);
    bool dense = false;
    if (force_dense) {
      dense = true;
    } else if (dense_enabled) {
      dense = est_density >= threshold;
    }
    if (dense) {
      est_density = DenseWindow<WordT>(ops, its, is_or, w, acc.data());
      emit_dense(acc.data(), w);
      if (op_stats != nullptr) {
        op_stats->dense_windows += 1;
        op_stats->words_decoded += w * ops.size();
      }
      done += w;
    } else if (is_or) {
      est_density = ScatterOrWindow<WordT>(ops, its, w, acc.data());
      emit_dense(acc.data(), w);
      done += w;
    } else {
      uint64_t literals = 0;
      const uint64_t n =
          SparseAndStretch<WordT>(ops, its, w, emit_run, &literals);
      est_density = static_cast<double>(literals) /
                    static_cast<double>(n * ops.size());
      done += n;
    }
  }
  for (const auto& it : its) INCDB_CHECK(it.done());
}

// Word-width-dispatched scalar I/O for serialization.
void WriteWord(BinaryWriter& writer, uint32_t word) { writer.WriteU32(word); }
void WriteWord(BinaryWriter& writer, uint64_t word) { writer.WriteU64(word); }
Status ReadWord(BinaryReader& reader, uint32_t* word) {
  INCDB_ASSIGN_OR_RETURN(*word, reader.ReadU32());
  return Status::OK();
}
Status ReadWord(BinaryReader& reader, uint64_t* word) {
  INCDB_ASSIGN_OR_RETURN(*word, reader.ReadU64());
  return Status::OK();
}

}  // namespace

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Compress(
    const BitVector& bits) {
  BasicWahBitVector out;
  const uint64_t n = bits.size();
  const std::vector<uint64_t>& words = bits.words();
  // Extract consecutive (W-1)-bit groups from the 64-bit word array.
  const uint64_t full_groups = n / kGroupBits;
  for (uint64_t g = 0; g < full_groups; ++g) {
    const uint64_t bit_pos = g * kGroupBits;
    const uint64_t word_idx = bit_pos / 64;
    const int offset = static_cast<int>(bit_pos % 64);
    uint64_t chunk = words[word_idx] >> offset;
    if (offset + kGroupBits > 64 && word_idx + 1 < words.size()) {
      chunk |= words[word_idx + 1] << (64 - offset);
    }
    const WordT literal =
        static_cast<WordT>(chunk & bitutil::LowBitsMask(kGroupBits));
    if (literal == 0) {
      out.EmitFill(false, 1);
    } else if (literal == Traits<WordT>::kFullLiteral) {
      out.EmitFill(true, 1);
    } else {
      out.EmitLiteral(literal);
    }
  }
  out.size_ = full_groups * kGroupBits;
  // Trailing partial group into the active word.
  for (uint64_t i = full_groups * kGroupBits; i < n; ++i) {
    out.AppendBit(bits.Get(i));
  }
  return out;
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Fill(uint64_t size,
                                                        bool bit) {
  BasicWahBitVector out;
  out.AppendRun(bit, size);
  return out;
}

template <typename WordT>
void BasicWahBitVector<WordT>::AppendBit(bool bit) {
  Detach();
  if (bit) active_word_ |= WordT{1} << active_bits_;
  ++active_bits_;
  ++size_;
  if (active_bits_ == kGroupBits) FlushActiveGroup();
}

template <typename WordT>
void BasicWahBitVector<WordT>::AppendRun(bool bit, uint64_t count) {
  Detach();
  // Align to a group boundary first.
  while (count > 0 && active_bits_ != 0) {
    AppendBit(bit);
    --count;
  }
  const uint64_t groups = count / kGroupBits;
  if (groups > 0) {
    EmitFill(bit, groups);
    size_ += groups * kGroupBits;
    count -= groups * kGroupBits;
  }
  while (count > 0) {
    AppendBit(bit);
    --count;
  }
}

template <typename WordT>
void BasicWahBitVector<WordT>::FlushActiveGroup() {
  INCDB_DCHECK(active_bits_ == kGroupBits);
  if (active_word_ == 0) {
    EmitFill(false, 1);
  } else if (active_word_ == Traits<WordT>::kFullLiteral) {
    EmitFill(true, 1);
  } else {
    EmitLiteral(active_word_);
  }
  active_word_ = 0;
  active_bits_ = 0;
}

template <typename WordT>
void BasicWahBitVector<WordT>::EmitFill(bool bit, uint64_t groups) {
  INCDB_DCHECK(!borrowed());
  while (groups > 0) {
    if (!words_.empty() && Traits<WordT>::IsFill(words_.back()) &&
        Traits<WordT>::FillBit(words_.back()) == bit) {
      const uint64_t have = Traits<WordT>::FillGroups(words_.back());
      const uint64_t take =
          std::min(groups, Traits<WordT>::kMaxFillGroups - have);
      if (take > 0) {
        words_.back() = Traits<WordT>::MakeFill(bit, have + take);
        groups -= take;
        continue;
      }
    }
    const uint64_t take = std::min(groups, Traits<WordT>::kMaxFillGroups);
    words_.push_back(Traits<WordT>::MakeFill(bit, take));
    groups -= take;
  }
}

template <typename WordT>
void BasicWahBitVector<WordT>::EmitLiteral(WordT literal) {
  INCDB_DCHECK(!borrowed());
  INCDB_DCHECK((literal & Traits<WordT>::kFillFlag) == 0);
  words_.push_back(literal);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::Count() const {
  uint64_t count = 0;
  for (WordT w : code_words()) {
    if (Traits<WordT>::IsFill(w)) {
      if (Traits<WordT>::FillBit(w)) {
        count += Traits<WordT>::FillGroups(w) * kGroupBits;
      }
    } else {
      count += static_cast<uint64_t>(std::popcount(w));
    }
  }
  count += static_cast<uint64_t>(std::popcount(active_word_));
  return count;
}

template <typename WordT>
BitVector BasicWahBitVector<WordT>::Decompress() const {
  BitVector out(size_);
  uint64_t bit_pos = 0;
  auto write_literal = [&](WordT lit) {
    for (WordT w = lit; w != 0; w &= w - 1) {
      out.Set(bit_pos + static_cast<uint64_t>(std::countr_zero(w)));
    }
    bit_pos += kGroupBits;
  };
  for (WordT w : code_words()) {
    if (Traits<WordT>::IsFill(w)) {
      const uint64_t span = Traits<WordT>::FillGroups(w) * kGroupBits;
      if (Traits<WordT>::FillBit(w)) {
        out.SetRange(bit_pos, bit_pos + span);
      }
      bit_pos += span;
    } else {
      write_literal(w);
    }
  }
  for (int i = 0; i < active_bits_; ++i) {
    if ((active_word_ >> i) & 1) out.Set(bit_pos + i);
  }
  return out;
}

template <typename WordT>
bool BasicWahBitVector<WordT>::Get(uint64_t index) const {
  INCDB_CHECK(index < size_);
  uint64_t bit_pos = 0;
  for (WordT w : code_words()) {
    const uint64_t span = Traits<WordT>::IsFill(w)
                              ? Traits<WordT>::FillGroups(w) * kGroupBits
                              : static_cast<uint64_t>(kGroupBits);
    if (index < bit_pos + span) {
      if (Traits<WordT>::IsFill(w)) return Traits<WordT>::FillBit(w);
      return (w >> (index - bit_pos)) & 1;
    }
    bit_pos += span;
  }
  return (active_word_ >> (index - bit_pos)) & 1;
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::SizeInBytes() const {
  return (code_words().size() + (active_bits_ > 0 ? 1 : 0)) * sizeof(WordT);
}

template <typename WordT>
double BasicWahBitVector<WordT>::CompressionRatio() const {
  if (size_ == 0) return 0.0;
  const double verbatim_bytes = static_cast<double>(size_) / 8.0;
  return static_cast<double>(SizeInBytes()) / verbatim_bytes;
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::And(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kAnd);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Or(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kOr);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Xor(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kXor);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::AndNot(
    const BasicWahBitVector& other) const {
  return BinaryOp(other, OpKind::kAndNot);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::BinaryOp(
    const BasicWahBitVector& other, OpKind op) const {
  INCDB_CHECK(size_ == other.size_);
  const int op_code = static_cast<int>(op);
  BasicWahBitVector out;
  BasicWahRunIterator<WordT> a(*this);
  BasicWahRunIterator<WordT> b(other);
  uint64_t groups_emitted = 0;
  while (!a.done() && !b.done()) {
    if (a.is_fill() && b.is_fill()) {
      const uint64_t n = std::min(a.groups_left(), b.groups_left());
      const WordT r = ApplyOp(a.LiteralView(), b.LiteralView(), op_code);
      out.EmitFill(r == Traits<WordT>::kFullLiteral, n);
      groups_emitted += n;
      a.Consume(n);
      b.Consume(n);
    } else {
      // At least one side is a literal; process one group.
      const WordT r = ApplyOp(a.LiteralView(), b.LiteralView(), op_code);
      if (r == 0) {
        out.EmitFill(false, 1);
      } else if (r == Traits<WordT>::kFullLiteral) {
        out.EmitFill(true, 1);
      } else {
        out.EmitLiteral(r);
      }
      ++groups_emitted;
      a.Consume(1);
      b.Consume(1);
    }
  }
  INCDB_CHECK(a.done() && b.done());
  out.size_ = groups_emitted * kGroupBits;
  // Partial trailing group: sizes are equal, so active_bits_ match.
  INCDB_CHECK(active_bits_ == other.active_bits_);
  if (active_bits_ > 0) {
    const WordT mask = static_cast<WordT>(bitutil::LowBitsMask(active_bits_));
    out.active_word_ =
        ApplyOp(active_word_, other.active_word_, op_code) & mask;
    out.active_bits_ = active_bits_;
    out.size_ += static_cast<uint64_t>(active_bits_);
  }
  INCDB_CHECK(out.size_ == size_);
  return out;
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::FuseToVector(
    std::span<const Operand> operands, bool is_or, WahOpStats* op_stats) {
  INCDB_CHECK(!operands.empty());
  const BasicWahBitVector& first = *operands[0].vec;
  for (const Operand& op : operands) {
    INCDB_CHECK(op.vec != nullptr && op.vec->size_ == first.size_);
  }
  if (operands.size() == 1 && !operands[0].negate) return first;
  if (operands.size() == 2 && !operands[0].negate && !operands[1].negate) {
    // The tight two-way merge; the k-way machinery has nothing to add.
    return is_or ? first.Or(*operands[1].vec) : first.And(*operands[1].vec);
  }
  BasicWahBitVector out;
  const uint64_t groups =
      (first.size_ - first.active_bits_) / static_cast<uint64_t>(kGroupBits);
  auto emit_run = [&out](WordT view, uint64_t n) {
    if (view == 0) {
      out.EmitFill(false, n);
    } else if (view == Traits<WordT>::kFullLiteral) {
      out.EmitFill(true, n);
    } else {
      INCDB_DCHECK(n == 1);
      out.EmitLiteral(view);
    }
  };
  // Re-encode a decoded window: fills for 0 / all-ones stretches, literals
  // otherwise. EmitFill merges across window boundaries, so the output is
  // canonical no matter how the engine partitioned the stream.
  auto emit_dense = [&out](const WordT* buf, uint64_t w) {
    uint64_t i = 0;
    while (i < w) {
      const WordT v = buf[i];
      if (v == 0 || v == Traits<WordT>::kFullLiteral) {
        uint64_t j = i + 1;
        while (j < w && buf[j] == v) ++j;
        out.EmitFill(v != 0, j - i);
        i = j;
      } else {
        out.EmitLiteral(v);
        ++i;
      }
    }
  };
  FuseHybrid<WordT>(operands, is_or, groups, emit_run, emit_dense, op_stats);
  out.size_ = groups * static_cast<uint64_t>(kGroupBits);
  if (first.active_bits_ > 0) {
    const WordT mask =
        static_cast<WordT>(bitutil::LowBitsMask(first.active_bits_));
    WordT acc = is_or ? WordT{0} : mask;
    for (const Operand& op : operands) {
      const WordT v = ActiveView<WordT>(op, op.vec->active_word_, mask);
      acc = is_or ? static_cast<WordT>(acc | v) : static_cast<WordT>(acc & v);
    }
    out.active_word_ = acc;
    out.active_bits_ = first.active_bits_;
    out.size_ += static_cast<uint64_t>(first.active_bits_);
  }
  INCDB_CHECK(out.size_ == first.size_);
  return out;
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::FuseToCount(
    std::span<const Operand> operands, bool is_or, WahOpStats* op_stats) {
  INCDB_CHECK(!operands.empty());
  const BasicWahBitVector& first = *operands[0].vec;
  for (const Operand& op : operands) {
    INCDB_CHECK(op.vec != nullptr && op.vec->size_ == first.size_);
  }
  const uint64_t groups =
      (first.size_ - first.active_bits_) / static_cast<uint64_t>(kGroupBits);
  uint64_t count = 0;
  auto emit_run = [&count](WordT view, uint64_t n) {
    count += static_cast<uint64_t>(std::popcount(view)) * n;
  };
  auto emit_dense = [&count](const WordT* buf, uint64_t w) {
    count += simd::ActiveKernels().popcount(
        buf, static_cast<size_t>(w) * sizeof(WordT));
  };
  FuseHybrid<WordT>(operands, is_or, groups, emit_run, emit_dense, op_stats);
  if (first.active_bits_ > 0) {
    const WordT mask =
        static_cast<WordT>(bitutil::LowBitsMask(first.active_bits_));
    WordT acc = is_or ? WordT{0} : mask;
    for (const Operand& op : operands) {
      const WordT v = ActiveView<WordT>(op, op.vec->active_word_, mask);
      acc = is_or ? static_cast<WordT>(acc | v) : static_cast<WordT>(acc & v);
    }
    count += static_cast<uint64_t>(std::popcount(acc));
  }
  return count;
}

namespace {

template <typename WordT>
std::vector<typename BasicWahBitVector<WordT>::Operand> PlainOperands(
    std::span<const BasicWahBitVector<WordT>* const> operands) {
  std::vector<typename BasicWahBitVector<WordT>::Operand> ops;
  ops.reserve(operands.size());
  for (const BasicWahBitVector<WordT>* vec : operands) {
    ops.push_back({vec, false});
  }
  return ops;
}

}  // namespace

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::OrMany(
    std::span<const BasicWahBitVector* const> operands,
    WahOpStats* op_stats) {
  const auto ops = PlainOperands<WordT>(operands);
  return FuseToVector(ops, /*is_or=*/true, op_stats);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::AndMany(
    std::span<const BasicWahBitVector* const> operands,
    WahOpStats* op_stats) {
  const auto ops = PlainOperands<WordT>(operands);
  return FuseToVector(ops, /*is_or=*/false, op_stats);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::AndMany(
    std::span<const Operand> operands, WahOpStats* op_stats) {
  return FuseToVector(operands, /*is_or=*/false, op_stats);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::OrManyCount(
    std::span<const BasicWahBitVector* const> operands,
    WahOpStats* op_stats) {
  const auto ops = PlainOperands<WordT>(operands);
  return FuseToCount(ops, /*is_or=*/true, op_stats);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::AndManyCount(
    std::span<const BasicWahBitVector* const> operands,
    WahOpStats* op_stats) {
  const auto ops = PlainOperands<WordT>(operands);
  return FuseToCount(ops, /*is_or=*/false, op_stats);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::AndManyCount(
    std::span<const Operand> operands, WahOpStats* op_stats) {
  return FuseToCount(operands, /*is_or=*/false, op_stats);
}

template <typename WordT>
uint64_t BasicWahBitVector<WordT>::AndCount(const BasicWahBitVector& a,
                                            const BasicWahBitVector& b,
                                            WahOpStats* op_stats) {
  const Operand ops[] = {{&a, false}, {&b, false}};
  return FuseToCount(ops, /*is_or=*/false, op_stats);
}

template <typename WordT>
BasicWahBitVector<WordT> BasicWahBitVector<WordT>::Not() const {
  BasicWahBitVector out;
  for (WordT w : code_words()) {
    if (Traits<WordT>::IsFill(w)) {
      out.EmitFill(!Traits<WordT>::FillBit(w), Traits<WordT>::FillGroups(w));
    } else {
      const WordT lit = ~w & Traits<WordT>::kFullLiteral;
      if (lit == 0) {
        out.EmitFill(false, 1);
      } else if (lit == Traits<WordT>::kFullLiteral) {
        out.EmitFill(true, 1);
      } else {
        out.EmitLiteral(lit);
      }
    }
  }
  out.size_ = size_ - static_cast<uint64_t>(active_bits_);
  if (active_bits_ > 0) {
    const WordT mask = static_cast<WordT>(bitutil::LowBitsMask(active_bits_));
    out.active_word_ = ~active_word_ & mask;
    out.active_bits_ = active_bits_;
    out.size_ += static_cast<uint64_t>(active_bits_);
  }
  return out;
}

template <typename WordT>
std::string BasicWahBitVector<WordT>::DebugString() const {
  std::string out;
  for (WordT w : code_words()) {
    if (Traits<WordT>::IsFill(w)) {
      out += "F";
      out += Traits<WordT>::FillBit(w) ? '1' : '0';
      out += 'x';
      out += std::to_string(Traits<WordT>::FillGroups(w));
      out += ' ';
    } else {
      out += "L:";
      for (int i = 0; i < kGroupBits; ++i) {
        out += ((w >> i) & 1) ? '1' : '0';
      }
      out += " ";
    }
  }
  if (active_bits_ > 0) {
    out += "A:";
    for (int i = 0; i < active_bits_; ++i) {
      out += ((active_word_ >> i) & 1) ? '1' : '0';
    }
  }
  return out;
}

template <typename WordT>
Result<BasicWahBitVector<WordT>> BasicWahBitVector<WordT>::FromBorrowed(
    std::span<const WordT> words, WordT active_word, int active_bits,
    uint64_t size) {
  if (active_bits < 0 || active_bits >= kGroupBits) {
    return Status::IOError("borrowed WAH vector: active_bits out of range");
  }
  if ((active_word &
       ~static_cast<WordT>(bitutil::LowBitsMask(active_bits))) != 0) {
    return Status::IOError("borrowed WAH vector: active word has stray bits");
  }
  if (size < static_cast<uint64_t>(active_bits)) {
    return Status::IOError("borrowed WAH vector: size below active bits");
  }
  BasicWahBitVector out;
  out.borrowed_words_ = words.data();
  out.num_borrowed_ = words.size();
  out.active_word_ = active_word;
  out.active_bits_ = active_bits;
  out.size_ = size;
  return out;
}

template <typename WordT>
Status BasicWahBitVector<WordT>::ValidateStructure() const {
  // Reject the moment the running total exceeds what `size_` allows:
  // adversarial fill counts must not be able to wrap the uint64 sum and
  // sneak a too-long vector past the final equality check. Each fill word
  // contributes well under 2^63 groups, and the bound itself is at most
  // 2^64 / kGroupBits, so `groups` can never overflow before the check.
  const uint64_t max_groups = size_ / kGroupBits + 1;
  uint64_t groups = 0;
  for (WordT w : code_words()) {
    groups += Traits<WordT>::IsFill(w) ? Traits<WordT>::FillGroups(w) : 1;
    if (groups > max_groups) {
      return Status::IOError("WAH vector: decoded group count does not "
                             "match declared size");
    }
  }
  if (groups * kGroupBits + static_cast<uint64_t>(active_bits_) != size_) {
    return Status::IOError("WAH vector: decoded group count does not match "
                           "declared size");
  }
  return Status::OK();
}

template <typename WordT>
void BasicWahBitVector<WordT>::Detach() {
  if (!borrowed()) return;
  words_.assign(borrowed_words_, borrowed_words_ + num_borrowed_);
  borrowed_words_ = nullptr;
  num_borrowed_ = 0;
}

template <typename WordT>
void BasicWahBitVector<WordT>::SaveTo(BinaryWriter& writer) const {
  writer.WriteU64(size_);
  writer.WriteU32(static_cast<uint32_t>(active_bits_));
  WriteWord(writer, active_word_);
  const std::span<const WordT> words = code_words();
  writer.WriteU64(words.size());
  for (WordT word : words) WriteWord(writer, word);
}

template <typename WordT>
Result<BasicWahBitVector<WordT>> BasicWahBitVector<WordT>::LoadFrom(
    BinaryReader& reader) {
  BasicWahBitVector out;
  INCDB_ASSIGN_OR_RETURN(out.size_, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint32_t active_bits, reader.ReadU32());
  if (active_bits >= static_cast<uint32_t>(kGroupBits)) {
    return Status::IOError("corrupted WAH payload: active_bits out of range");
  }
  out.active_bits_ = static_cast<int>(active_bits);
  INCDB_RETURN_IF_ERROR(ReadWord(reader, &out.active_word_));
  if ((out.active_word_ &
       ~static_cast<WordT>(bitutil::LowBitsMask(out.active_bits_))) != 0) {
    return Status::IOError(
        "corrupted WAH payload: active word has stray bits");
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t num_words, reader.ReadU64());
  if (num_words > (uint64_t{1} << 40)) {
    return Status::IOError("corrupted WAH payload: implausible word count");
  }
  out.words_.resize(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    INCDB_RETURN_IF_ERROR(ReadWord(reader, &out.words_[i]));
  }
  // Cross-check the declared size against the decoded group count.
  uint64_t groups = 0;
  for (WordT w : out.words_) {
    groups += Traits<WordT>::IsFill(w) ? Traits<WordT>::FillGroups(w) : 1;
  }
  if (groups * kGroupBits + static_cast<uint64_t>(out.active_bits_) !=
      out.size_) {
    return Status::IOError("corrupted WAH payload: size mismatch");
  }
  return out;
}

template class BasicWahBitVector<uint32_t>;
template class BasicWahBitVector<uint64_t>;

}  // namespace incdb
