#ifndef INCDB_TABLE_SCHEMA_H_
#define INCDB_TABLE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace incdb {

/// Static description of one attribute: its name and cardinality C_i.
/// Values of the attribute range over 1..cardinality, with 0 = missing.
struct AttributeSpec {
  std::string name;
  uint32_t cardinality = 0;
};

/// An ordered list of attributes (A_1, ..., A_d).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeSpec> attributes);

  /// Validates that every attribute has a non-empty unique name and a
  /// positive cardinality.
  Status Validate() const;

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeSpec& attribute(size_t i) const { return attributes_[i]; }
  const std::vector<AttributeSpec>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<AttributeSpec> attributes_;
};

inline bool operator==(const AttributeSpec& a, const AttributeSpec& b) {
  return a.name == b.name && a.cardinality == b.cardinality;
}

}  // namespace incdb

#endif  // INCDB_TABLE_SCHEMA_H_
