#ifndef INCDB_TABLE_VALUE_H_
#define INCDB_TABLE_VALUE_H_

#include <cstdint>

namespace incdb {

/// A cell value. Following the paper's problem definition, every attribute
/// domain is the integers 1..C_i (C_i = attribute cardinality); the reserved
/// value 0 denotes a missing cell.
using Value = int32_t;

/// The missing-cell marker. It is intentionally *outside* every attribute
/// domain (domains start at 1), mirroring the paper's treatment of missing
/// as "the next smallest possible value outside the lower bound".
constexpr Value kMissingValue = 0;

/// True if `v` denotes a missing cell.
constexpr bool IsMissing(Value v) { return v == kMissingValue; }

}  // namespace incdb

#endif  // INCDB_TABLE_VALUE_H_
