#ifndef INCDB_TABLE_CSV_H_
#define INCDB_TABLE_CSV_H_

#include <string>

#include "common/status.h"
#include "table/table.h"

namespace incdb {

/// Writes a table to CSV. The header row is `name:cardinality` per column;
/// missing cells are written as `?`.
Status WriteCsv(const Table& table, const std::string& path);

/// Reads a table written by WriteCsv (or hand-authored in the same format).
Result<Table> ReadCsv(const std::string& path);

}  // namespace incdb

#endif  // INCDB_TABLE_CSV_H_
