#include "table/table.h"

#include <cstdio>

#include "common/logging.h"

namespace incdb {

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_attributes());
  for (const AttributeSpec& attr : schema_.attributes()) {
    columns_.emplace_back(attr.cardinality);
  }
}

Result<Table> Table::Create(Schema schema) {
  INCDB_RETURN_IF_ERROR(schema.Validate());
  return Table(std::move(schema));
}

Result<Table> Table::FromColumns(Schema schema, std::vector<Column> columns,
                                 uint64_t num_rows) {
  INCDB_RETURN_IF_ERROR(schema.Validate());
  if (columns.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "column count " + std::to_string(columns.size()) +
        " does not match schema attribute count " +
        std::to_string(schema.num_attributes()));
  }
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].cardinality() != schema.attribute(i).cardinality) {
      return Status::InvalidArgument("attribute '" +
                                     schema.attribute(i).name +
                                     "': column cardinality mismatch");
    }
    if (columns[i].num_rows() != num_rows) {
      return Status::InvalidArgument(
          "attribute '" + schema.attribute(i).name + "': column has " +
          std::to_string(columns[i].num_rows()) + " rows, expected " +
          std::to_string(num_rows));
    }
  }
  Table table(std::move(schema));
  table.columns_ = std::move(columns);
  table.num_rows_.store(num_rows, std::memory_order_release);
  return table;
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, schema has " +
        std::to_string(columns_.size()) + " attributes");
  }
  // Validate the whole row before mutating any column so a failed append
  // leaves the table unchanged.
  for (size_t i = 0; i < row.size(); ++i) {
    const Value v = row[i];
    if (v != kMissingValue &&
        (v < 1 || static_cast<uint32_t>(v) > columns_[i].cardinality())) {
      return Status::OutOfRange(
          "attribute '" + schema_.attribute(i).name + "': value " +
          std::to_string(v) + " outside domain [1, " +
          std::to_string(columns_[i].cardinality()) + "]");
    }
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ScopedRole role(columns_[i].writer_role());
    columns_[i].AppendUnchecked(row[i]);
  }
  // Release so a reader that observes the new count also observes the cells.
  num_rows_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

void Table::AppendRowUnchecked(const std::vector<Value>& row) {
  INCDB_DCHECK(row.size() == columns_.size());
  for (size_t i = 0; i < row.size(); ++i) {
    const ScopedRole role(columns_[i].writer_role());
    columns_[i].AppendUnchecked(row[i]);
  }
  num_rows_.fetch_add(1, std::memory_order_release);
}

std::string Table::Summary() const {
  uint64_t missing = 0;
  for (const Column& col : columns_) missing += col.MissingCount();
  const uint64_t rows = num_rows();
  const uint64_t cells = rows * num_attributes();
  char buf[128];
  std::snprintf(buf, sizeof(buf), "rows=%llu attrs=%zu missing=%.1f%%",
                static_cast<unsigned long long>(rows), num_attributes(),
                cells == 0 ? 0.0 : 100.0 * static_cast<double>(missing) /
                                       static_cast<double>(cells));
  return buf;
}

}  // namespace incdb
