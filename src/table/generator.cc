#include "table/generator.h"

#include <memory>

#include "common/rng.h"

namespace incdb {

Result<Table> GenerateTable(const DatasetSpec& spec) {
  std::vector<AttributeSpec> schema_attrs;
  schema_attrs.reserve(spec.attributes.size());
  for (const GeneratedAttribute& attr : spec.attributes) {
    if (attr.missing_rate < 0.0 || attr.missing_rate > 1.0) {
      return Status::InvalidArgument("missing_rate for '" + attr.name +
                                     "' must be in [0, 1]");
    }
    schema_attrs.push_back({attr.name, attr.cardinality});
  }
  INCDB_ASSIGN_OR_RETURN(Table table, Table::Create(Schema(schema_attrs)));

  Rng rng(spec.seed);
  std::vector<std::unique_ptr<ZipfSampler>> zipf(spec.attributes.size());
  for (size_t i = 0; i < spec.attributes.size(); ++i) {
    if (spec.attributes[i].zipf_theta > 0.0) {
      zipf[i] = std::make_unique<ZipfSampler>(spec.attributes[i].cardinality,
                                              spec.attributes[i].zipf_theta);
    }
  }

  std::vector<Value> row(spec.attributes.size());
  for (uint64_t r = 0; r < spec.num_rows; ++r) {
    for (size_t i = 0; i < spec.attributes.size(); ++i) {
      const GeneratedAttribute& attr = spec.attributes[i];
      if (rng.Bernoulli(attr.missing_rate)) {
        row[i] = kMissingValue;
      } else if (zipf[i] != nullptr) {
        row[i] = static_cast<Value>(zipf[i]->Sample(rng));
      } else {
        row[i] = static_cast<Value>(rng.UniformInt(1, attr.cardinality));
      }
    }
    table.AppendRowUnchecked(row);
  }
  return table;
}

DatasetSpec PaperSyntheticSpec(uint64_t num_rows, uint64_t seed) {
  // Paper Table 7 (left): per-cardinality attribute counts per missing rate.
  struct Row {
    uint32_t cardinality;
    size_t count_per_missing_rate;
  };
  constexpr Row kDesign[] = {{2, 10}, {5, 10},  {10, 20},
                             {20, 20}, {50, 20}, {100, 10}};
  constexpr double kMissingRates[] = {0.10, 0.20, 0.30, 0.40, 0.50};

  DatasetSpec spec;
  spec.num_rows = num_rows;
  spec.seed = seed;
  for (const Row& design : kDesign) {
    for (double rate : kMissingRates) {
      for (size_t k = 0; k < design.count_per_missing_rate; ++k) {
        GeneratedAttribute attr;
        attr.name = "c";
        attr.name += std::to_string(design.cardinality);
        attr.name += "_m";
        attr.name += std::to_string(static_cast<int>(rate * 100));
        attr.name += '_';
        attr.name += std::to_string(k);
        attr.cardinality = design.cardinality;
        attr.missing_rate = rate;
        spec.attributes.push_back(attr);
      }
    }
  }
  return spec;
}

DatasetSpec UniformSpec(uint64_t num_rows, uint32_t cardinality,
                        double missing_rate, size_t count, uint64_t seed) {
  DatasetSpec spec;
  spec.num_rows = num_rows;
  spec.seed = seed;
  for (size_t k = 0; k < count; ++k) {
    GeneratedAttribute attr;
    attr.name = "a";
    attr.name += std::to_string(k);
    attr.cardinality = cardinality;
    attr.missing_rate = missing_rate;
    spec.attributes.push_back(attr);
  }
  return spec;
}

DatasetSpec CensusLikeSpec(uint64_t num_rows, uint64_t seed) {
  // Paper Table 7 (right): attribute counts per (cardinality bucket,
  // missing bucket). Bucket representatives are chosen so the generated
  // dataset matches the paper's aggregate statistics: cardinalities 2..165
  // (avg ~37) and missing 0%..98.5% (avg ~41%), with 8 attributes above 90%
  // missing. Zipf thetas vary per attribute to model real-data skew.
  struct Bucket {
    size_t counts[5];              // columns of Table 7 (right)
    uint32_t cardinalities[5];     // representative cardinality per column
  };
  // Missing-rate representative per column. The >50% column carries the
  // paper's eight >90%-missing attributes.
  constexpr double kMissingRates[5] = {0.0, 0.10, 0.40, 0.80, 0.95};
  const Bucket kBuckets[4] = {
      // card < 10
      {{11, 0, 2, 2, 0}, {2, 4, 5, 8, 9}},
      // card 10-50
      {{7, 2, 3, 5, 4}, {12, 20, 28, 36, 48}},
      // card 51-100
      {{2, 0, 1, 2, 2}, {55, 64, 72, 88, 97}},
      // card > 100
      {{0, 0, 1, 2, 2}, {110, 120, 135, 150, 165}},
  };

  DatasetSpec spec;
  spec.num_rows = num_rows;
  spec.seed = seed;
  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);  // local stream for theta jitter
  size_t serial = 0;
  for (const Bucket& bucket : kBuckets) {
    for (int col = 0; col < 5; ++col) {
      for (size_t k = 0; k < bucket.counts[col]; ++k) {
        GeneratedAttribute attr;
        attr.name = "census_" + std::to_string(serial++);
        attr.cardinality = bucket.cardinalities[col];
        attr.missing_rate = kMissingRates[col];
        // Real census attributes are heavily skewed; theta in [0.8, 1.6].
        attr.zipf_theta = 0.8 + 0.8 * rng.UniformDouble();
        spec.attributes.push_back(attr);
      }
    }
  }
  return spec;
}

}  // namespace incdb
