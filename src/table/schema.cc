#include "table/schema.h"

#include <unordered_set>

namespace incdb {

Schema::Schema(std::vector<AttributeSpec> attributes)
    : attributes_(std::move(attributes)) {}

Status Schema::Validate() const {
  std::unordered_set<std::string> names;
  for (const AttributeSpec& attr : attributes_) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    if (attr.cardinality == 0) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' must have positive cardinality");
    }
    if (!names.insert(attr.name).second) {
      return Status::AlreadyExists("duplicate attribute name '" + attr.name +
                                   "'");
    }
  }
  return Status::OK();
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

bool Schema::operator==(const Schema& other) const {
  return attributes_ == other.attributes_;
}

}  // namespace incdb
