#ifndef INCDB_TABLE_TABLE_H_
#define INCDB_TABLE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/column.h"
#include "table/schema.h"
#include "table/value.h"

namespace incdb {

/// An in-memory incomplete database: a schema plus columnar storage where
/// any cell may be missing. This is the substrate every index in incdb is
/// built over and the ground truth queries are refined against.
///
/// Concurrency: the table is append-only and single-writer. Column blocks
/// never move once allocated and the row counter is atomic, so readers may
/// access cells of rows they learned about through a Database snapshot (or
/// any other release/acquire publication) while the writer appends new
/// rows. Everything else (Summary, histograms, reordering) assumes a
/// quiescent table.
class Table {
 public:
  /// Creates an empty table for `schema`. Fails if the schema is invalid.
  static Result<Table> Create(Schema schema);

  /// Assembles a table from pre-built columns (the storage engine's open
  /// path, where the columns are mmap-borrowed views). Every column must
  /// match its attribute's cardinality and hold exactly `num_rows` rows.
  static Result<Table> FromColumns(Schema schema, std::vector<Column> columns,
                                   uint64_t num_rows);

  Table(const Table& other)
      : schema_(other.schema_),
        columns_(other.columns_),
        num_rows_(other.num_rows_.load(std::memory_order_relaxed)) {}
  Table& operator=(const Table& other) {
    if (this != &other) {
      schema_ = other.schema_;
      columns_ = other.columns_;
      num_rows_.store(other.num_rows_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    return *this;
  }
  Table(Table&& other) noexcept
      : schema_(std::move(other.schema_)),
        columns_(std::move(other.columns_)),
        num_rows_(other.num_rows_.load(std::memory_order_relaxed)) {}
  Table& operator=(Table&& other) noexcept {
    if (this != &other) {
      schema_ = std::move(other.schema_);
      columns_ = std::move(other.columns_);
      num_rows_.store(other.num_rows_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    }
    return *this;
  }

  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const {
    return num_rows_.load(std::memory_order_acquire);
  }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// Appends a full row; `row[i]` is the value of attribute i
  /// (kMissingValue for missing cells). Validates domain membership.
  Status AppendRow(const std::vector<Value>& row);

  /// Cell accessors.
  Value Get(uint64_t row, size_t attr) const { return columns_[attr].Get(row); }
  bool IsMissingAt(uint64_t row, size_t attr) const {
    return columns_[attr].IsMissingAt(row);
  }

  const Column& column(size_t attr) const { return columns_[attr]; }

  /// Raw bytes to store the data verbatim (one Value per cell) — the
  /// reference point for index-size comparisons.
  uint64_t DataSizeInBytes() const {
    return num_rows() * num_attributes() * sizeof(Value);
  }

  /// Human-readable one-line summary ("rows=... attrs=... missing=...%").
  std::string Summary() const;

  // Generator fast path: appends without per-cell validation.
  void AppendRowUnchecked(const std::vector<Value>& row);

 private:
  explicit Table(Schema schema);

  Schema schema_;
  std::vector<Column> columns_;
  std::atomic<uint64_t> num_rows_{0};
};

}  // namespace incdb

#endif  // INCDB_TABLE_TABLE_H_
