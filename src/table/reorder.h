#ifndef INCDB_TABLE_REORDER_H_
#define INCDB_TABLE_REORDER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace incdb {

/// Row reordering for better bitmap compression — the paper's §6 future
/// work ("we would like to explore techniques such as ... row reordering
/// in order to achieve more compression", aimed at the range-encoded
/// bitmaps that WAH barely compresses in place).
///
/// Reordering rows so that equal values cluster turns scattered bits into
/// long runs, which WAH's fill words then erase. Queries are unaffected
/// except that result row ids refer to the reordered table.

/// A permutation sorting rows lexicographically by the given attributes
/// (missing cells sort first, as value 0). `order[new_pos] = old_row`.
std::vector<uint32_t> LexicographicOrder(const Table& table,
                                         const std::vector<size_t>& key_attrs);

/// Lexicographic order over all attributes, lowest-cardinality attributes
/// first — the standard heuristic: low-cardinality columns form the
/// longest runs, so they should dominate the sort.
std::vector<uint32_t> LexicographicOrder(const Table& table);

/// Attribute indexes sorted by ascending cardinality (ties by position).
std::vector<size_t> CardinalityAscendingAttributeOrder(const Table& table);

/// Materializes a reordered copy of the table: row i of the result is row
/// `order[i]` of the input. `order` must be a permutation of [0, rows).
Result<Table> ReorderRows(const Table& table,
                          const std::vector<uint32_t>& order);

}  // namespace incdb

#endif  // INCDB_TABLE_REORDER_H_
