#ifndef INCDB_TABLE_COLUMN_H_
#define INCDB_TABLE_COLUMN_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "table/value.h"

namespace incdb {

/// Columnar storage for one attribute of an incomplete table.
///
/// Stores one Value per row; kMissingValue (0) marks missing cells. The
/// column knows its declared cardinality and validates appends against it.
///
/// Cells live in geometrically growing blocks (1Ki values, then 2Ki, 4Ki,
/// ...) that are never reallocated or moved once allocated, so the address
/// of a written cell is stable for the lifetime of the column. This is what
/// makes the Database's snapshot isolation possible: a single writer may
/// append rows while concurrent readers access cells of rows below their
/// snapshot watermark — appends touch only memory no reader looks at, and
/// the block directory is a fixed-size array that never grows. (Publication
/// ordering between the writer's cell stores and a reader's first access is
/// provided by the Database's epoch swap; the column itself does no
/// synchronization, and concurrent access to the *same* rows being appended
/// is still a race — see core/snapshot.h.)
class Column {
 public:
  /// A column for an attribute with domain 1..cardinality.
  explicit Column(uint32_t cardinality);

  /// A column whose first `count` rows are a non-owning view over external
  /// memory (the storage engine's mmap zero-copy mode). Rows appended
  /// afterwards go into ordinary heap blocks, so the delta-append regime
  /// of the snapshot machinery works unchanged on an opened database. The
  /// caller guarantees `values` outlives the column (and every copy of
  /// it — copies share the borrowed prefix).
  static Column Borrowed(uint32_t cardinality, const Value* values,
                         uint64_t count);

  /// One piece of a multi-extent borrowed prefix: `count` consecutive rows
  /// backed by `values`.
  struct BorrowedExtent {
    const Value* values = nullptr;
    uint64_t count = 0;
  };

  /// A column whose borrowed prefix is stitched from several extents in row
  /// order — the segmented store's open path, where each sealed segment's
  /// values live in its own mapped file and the extents cannot be made
  /// contiguous. Lookup in the prefix is a branchless single-extent hit
  /// when only one extent exists, a binary search otherwise. Same lifetime
  /// contract as Borrowed().
  static Column BorrowedExtents(uint32_t cardinality,
                                std::vector<BorrowedExtent> extents);

  Column(const Column& other);
  Column& operator=(const Column& other);
  Column(Column&&) noexcept = default;
  Column& operator=(Column&&) noexcept = default;

  uint32_t cardinality() const { return cardinality_; }
  uint64_t num_rows() const { return size_; }

  /// Rows living in the borrowed (mmap-backed) prefix; 0 for an ordinary
  /// in-memory column.
  uint64_t borrowed_rows() const { return num_borrowed_; }

  /// The column's single-writer role: the capability every unchecked append
  /// must hold. Claiming it (ScopedRole) costs nothing at runtime; it makes
  /// the "one writer, appends never touch published rows" protocol a
  /// compile-time obligation under clang's -Wthread-safety instead of a
  /// comment. Table's append machinery claims it per column; any other
  /// caller of AppendUnchecked must claim it explicitly.
  ThreadRole& writer_role() const INCDB_RETURN_CAPABILITY(writer_role_) {
    return writer_role_;
  }

  /// Appends a value (kMissingValue allowed). Rejects values outside
  /// [1, cardinality]. Claims the writer role internally.
  Status Append(Value v);

  /// Appends without validation (generator fast path; caller guarantees
  /// domain membership and must hold the writer role).
  void AppendUnchecked(Value v) INCDB_REQUIRES(writer_role_) {
    const uint64_t biased = (size_ - num_borrowed_) + kFirstBlockSize;
    const int high_bit = 63 - __builtin_clzll(biased);
    const size_t block = static_cast<size_t>(high_bit) - kFirstBlockBits;
    if (blocks_[block] == nullptr) {
      blocks_[block] = std::make_unique<Value[]>(uint64_t{1} << high_bit);
    }
    blocks_[block][biased - (uint64_t{1} << high_bit)] = v;
    ++size_;
  }

  /// Value at `row` (kMissingValue if the cell is missing).
  Value Get(uint64_t row) const {
    if (row < num_borrowed_) {
      if (borrowed_ != nullptr) return borrowed_[row];
      return GetFromExtents(row);
    }
    const uint64_t biased = (row - num_borrowed_) + kFirstBlockSize;
    const int high_bit = 63 - __builtin_clzll(biased);
    return blocks_[static_cast<size_t>(high_bit) - kFirstBlockBits]
                  [biased - (uint64_t{1} << high_bit)];
  }

  bool IsMissingAt(uint64_t row) const { return IsMissing(Get(row)); }

  /// Number of missing cells.
  uint64_t MissingCount() const;

  /// Fraction of missing cells (0 for an empty column) — the paper's P_m.
  double MissingRate() const;

  /// Histogram over values: index v holds the count of value v, index 0 the
  /// missing count. Size cardinality()+1.
  std::vector<uint64_t> Histogram() const;

  /// Number of distinct non-missing values that actually occur.
  uint32_t DistinctCount() const;

  /// Mean of the non-missing values (0 if all missing). Used by the
  /// bitstring-augmented baseline, which maps missing cells to the mean.
  double NonMissingMean() const;

 private:
  /// Multi-extent prefix lookup (out of line: the single-extent and heap
  /// paths stay branch-cheap in the header).
  Value GetFromExtents(uint64_t row) const;

  /// First block holds 2^kFirstBlockBits values; block i holds twice as
  /// many as block i-1. 48 blocks cover far more rows than the uint32_t
  /// row ids used everywhere else.
  static constexpr int kFirstBlockBits = 10;
  static constexpr uint64_t kFirstBlockSize = uint64_t{1} << kFirstBlockBits;
  static constexpr size_t kNumBlocks = 48;

  uint32_t cardinality_;
  uint64_t size_ = 0;
  /// See writer_role(). Mutable: claiming a role is not a logical mutation.
  mutable ThreadRole writer_role_;
  /// Non-owning prefix of rows [0, num_borrowed_); see Borrowed(). Blocks
  /// then hold rows num_borrowed_.. (block math is relative to the prefix).
  /// Exactly one of borrowed_ / extent_*_ describes a non-empty prefix:
  /// borrowed_ for the single-extent form, the extent arrays (parallel,
  /// starts ascending from 0) for the stitched form.
  const Value* borrowed_ = nullptr;
  uint64_t num_borrowed_ = 0;
  std::vector<uint64_t> extent_starts_;
  std::vector<const Value*> extent_values_;
  std::array<std::unique_ptr<Value[]>, kNumBlocks> blocks_;
};

}  // namespace incdb

#endif  // INCDB_TABLE_COLUMN_H_
