#ifndef INCDB_TABLE_COLUMN_H_
#define INCDB_TABLE_COLUMN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "table/value.h"

namespace incdb {

/// Columnar storage for one attribute of an incomplete table.
///
/// Stores one Value per row; kMissingValue (0) marks missing cells. The
/// column knows its declared cardinality and validates appends against it.
class Column {
 public:
  /// A column for an attribute with domain 1..cardinality.
  explicit Column(uint32_t cardinality);

  uint32_t cardinality() const { return cardinality_; }
  uint64_t num_rows() const { return values_.size(); }

  /// Appends a value (kMissingValue allowed). Rejects values outside
  /// [1, cardinality].
  Status Append(Value v);

  /// Appends without validation (generator fast path; caller guarantees
  /// domain membership).
  void AppendUnchecked(Value v) { values_.push_back(v); }

  /// Value at `row` (kMissingValue if the cell is missing).
  Value Get(uint64_t row) const { return values_[row]; }

  bool IsMissingAt(uint64_t row) const { return IsMissing(values_[row]); }

  /// Number of missing cells.
  uint64_t MissingCount() const;

  /// Fraction of missing cells (0 for an empty column) — the paper's P_m.
  double MissingRate() const;

  /// Histogram over values: index v holds the count of value v, index 0 the
  /// missing count. Size cardinality()+1.
  std::vector<uint64_t> Histogram() const;

  /// Number of distinct non-missing values that actually occur.
  uint32_t DistinctCount() const;

  /// Mean of the non-missing values (0 if all missing). Used by the
  /// bitstring-augmented baseline, which maps missing cells to the mean.
  double NonMissingMean() const;

  const std::vector<Value>& values() const { return values_; }

 private:
  uint32_t cardinality_;
  std::vector<Value> values_;
};

}  // namespace incdb

#endif  // INCDB_TABLE_COLUMN_H_
