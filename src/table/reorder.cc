#include "table/reorder.h"

#include <algorithm>
#include <numeric>

namespace incdb {

std::vector<uint32_t> LexicographicOrder(
    const Table& table, const std::vector<size_t>& key_attrs) {
  std::vector<uint32_t> order(table.num_rows());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t attr : key_attrs) {
                       const Value va = table.Get(a, attr);
                       const Value vb = table.Get(b, attr);
                       if (va != vb) return va < vb;
                     }
                     return false;
                   });
  return order;
}

std::vector<uint32_t> LexicographicOrder(const Table& table) {
  return LexicographicOrder(table, CardinalityAscendingAttributeOrder(table));
}

std::vector<size_t> CardinalityAscendingAttributeOrder(const Table& table) {
  std::vector<size_t> attrs(table.num_attributes());
  std::iota(attrs.begin(), attrs.end(), 0);
  std::stable_sort(attrs.begin(), attrs.end(), [&](size_t a, size_t b) {
    return table.schema().attribute(a).cardinality <
           table.schema().attribute(b).cardinality;
  });
  return attrs;
}

Result<Table> ReorderRows(const Table& table,
                          const std::vector<uint32_t>& order) {
  if (order.size() != table.num_rows()) {
    return Status::InvalidArgument(
        "order has " + std::to_string(order.size()) + " entries, table has " +
        std::to_string(table.num_rows()) + " rows");
  }
  std::vector<bool> seen(order.size(), false);
  for (uint32_t row : order) {
    if (row >= order.size() || seen[row]) {
      return Status::InvalidArgument("order is not a permutation");
    }
    seen[row] = true;
  }
  INCDB_ASSIGN_OR_RETURN(Table reordered, Table::Create(table.schema()));
  std::vector<Value> row(table.num_attributes());
  for (uint32_t old_row : order) {
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      row[a] = table.Get(old_row, a);
    }
    reordered.AppendRowUnchecked(row);
  }
  return reordered;
}

}  // namespace incdb
