#ifndef INCDB_TABLE_GENERATOR_H_
#define INCDB_TABLE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace incdb {

/// Recipe for one generated attribute.
struct GeneratedAttribute {
  std::string name;
  uint32_t cardinality = 0;
  /// Probability that a cell of this attribute is missing (the paper's P_m).
  double missing_rate = 0.0;
  /// Zipf skew parameter for the value distribution of non-missing cells.
  /// 0 = uniform (the paper's synthetic dataset); > 0 = skewed (our
  /// census-like substitute, see DESIGN.md §3/§5).
  double zipf_theta = 0.0;
};

/// Recipe for a whole generated dataset.
struct DatasetSpec {
  std::vector<GeneratedAttribute> attributes;
  uint64_t num_rows = 0;
  uint64_t seed = 42;
};

/// Generates an incomplete table from a spec. Deterministic in the seed.
Result<Table> GenerateTable(const DatasetSpec& spec);

/// The paper's synthetic dataset design (Table 7, left): uniformly
/// distributed values, `num_rows` records (paper: 100,000) and 450
/// attributes — cardinalities {2,5,10,20,50,100} crossed with missing rates
/// {10,20,30,40,50}%, with {10,10,20,20,20,10} attributes per
/// (cardinality, missing-rate) cell respectively.
DatasetSpec PaperSyntheticSpec(uint64_t num_rows = 100000, uint64_t seed = 42);

/// A single-cell slice of the synthetic design: `count` uniform attributes
/// with the given cardinality and missing rate (used by the per-figure
/// benches that sweep one parameter at a time).
DatasetSpec UniformSpec(uint64_t num_rows, uint32_t cardinality,
                        double missing_rate, size_t count, uint64_t seed = 42);

/// Census-like substitute for the paper's real dataset (Table 7, right):
/// 48 attributes whose cardinality/missing-rate histogram matches the
/// paper's census extract, with Zipf-skewed value distributions standing in
/// for real-data skew (the property the paper credits for its real-data
/// compression and speed results). Paper row count: 463,733; benches may
/// pass a scaled row count.
DatasetSpec CensusLikeSpec(uint64_t num_rows = 463733, uint64_t seed = 42);

}  // namespace incdb

#endif  // INCDB_TABLE_GENERATOR_H_
