#include "table/column.h"

namespace incdb {

Column::Column(uint32_t cardinality) : cardinality_(cardinality) {}

Status Column::Append(Value v) {
  if (v != kMissingValue &&
      (v < 1 || static_cast<uint32_t>(v) > cardinality_)) {
    return Status::OutOfRange("value " + std::to_string(v) +
                              " outside domain [1, " +
                              std::to_string(cardinality_) + "]");
  }
  values_.push_back(v);
  return Status::OK();
}

uint64_t Column::MissingCount() const {
  uint64_t count = 0;
  for (Value v : values_) {
    if (IsMissing(v)) ++count;
  }
  return count;
}

double Column::MissingRate() const {
  if (values_.empty()) return 0.0;
  return static_cast<double>(MissingCount()) /
         static_cast<double>(values_.size());
}

std::vector<uint64_t> Column::Histogram() const {
  std::vector<uint64_t> hist(cardinality_ + 1, 0);
  for (Value v : values_) ++hist[static_cast<size_t>(v)];
  return hist;
}

uint32_t Column::DistinctCount() const {
  const std::vector<uint64_t> hist = Histogram();
  uint32_t distinct = 0;
  for (size_t v = 1; v < hist.size(); ++v) {
    if (hist[v] > 0) ++distinct;
  }
  return distinct;
}

double Column::NonMissingMean() const {
  uint64_t count = 0;
  double sum = 0.0;
  for (Value v : values_) {
    if (!IsMissing(v)) {
      sum += static_cast<double>(v);
      ++count;
    }
  }
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

}  // namespace incdb
