#include "table/column.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace incdb {

Column::Column(uint32_t cardinality) : cardinality_(cardinality) {}

Column Column::Borrowed(uint32_t cardinality, const Value* values,
                        uint64_t count) {
  // Borrowed-view invariant: a non-empty prefix must have real backing
  // memory — a null base with count > 0 would make every Get a wild read.
  INCDB_CHECK_MSG(values != nullptr || count == 0,
                  "borrowed column prefix with null backing memory");
  Column column(cardinality);
  column.borrowed_ = values;
  column.num_borrowed_ = count;
  column.size_ = count;
  return column;
}

Column Column::BorrowedExtents(uint32_t cardinality,
                               std::vector<BorrowedExtent> extents) {
  // Collapse to the single-extent fast path when possible; empty extents
  // are skipped so callers can pass e.g. a zero-row tail unconditionally.
  std::vector<BorrowedExtent> kept;
  kept.reserve(extents.size());
  for (const BorrowedExtent& extent : extents) {
    if (extent.count == 0) continue;
    INCDB_CHECK_MSG(extent.values != nullptr,
                    "borrowed column extent with null backing memory");
    kept.push_back(extent);
  }
  if (kept.empty()) return Column(cardinality);
  if (kept.size() == 1) {
    return Borrowed(cardinality, kept.front().values, kept.front().count);
  }
  Column column(cardinality);
  column.extent_starts_.reserve(kept.size());
  column.extent_values_.reserve(kept.size());
  uint64_t row = 0;
  for (const BorrowedExtent& extent : kept) {
    column.extent_starts_.push_back(row);
    column.extent_values_.push_back(extent.values);
    row += extent.count;
  }
  column.num_borrowed_ = row;
  column.size_ = row;
  return column;
}

Value Column::GetFromExtents(uint64_t row) const {
  const auto it = std::upper_bound(extent_starts_.begin(),
                                   extent_starts_.end(), row);
  const size_t e = static_cast<size_t>(it - extent_starts_.begin()) - 1;
  return extent_values_[e][row - extent_starts_[e]];
}

Column::Column(const Column& other)
    : cardinality_(other.cardinality_),
      size_(other.size_),
      borrowed_(other.borrowed_),
      num_borrowed_(other.num_borrowed_),
      extent_starts_(other.extent_starts_),
      extent_values_(other.extent_values_) {
  const uint64_t block_rows = size_ - num_borrowed_;
  for (size_t b = 0; b < kNumBlocks; ++b) {
    if (other.blocks_[b] == nullptr) continue;
    const uint64_t block_size = kFirstBlockSize << b;
    const uint64_t first_row = block_size - kFirstBlockSize;
    const uint64_t used = std::min(block_size, block_rows - first_row);
    blocks_[b] = std::make_unique<Value[]>(block_size);
    std::memcpy(blocks_[b].get(), other.blocks_[b].get(),
                used * sizeof(Value));
  }
}

Column& Column::operator=(const Column& other) {
  if (this != &other) *this = Column(other);
  return *this;
}

Status Column::Append(Value v) {
  if (v != kMissingValue &&
      (v < 1 || static_cast<uint32_t>(v) > cardinality_)) {
    return Status::OutOfRange("value " + std::to_string(v) +
                              " outside domain [1, " +
                              std::to_string(cardinality_) + "]");
  }
  const ScopedRole role(writer_role());
  AppendUnchecked(v);
  return Status::OK();
}

uint64_t Column::MissingCount() const {
  uint64_t count = 0;
  for (uint64_t r = 0; r < size_; ++r) {
    if (IsMissing(Get(r))) ++count;
  }
  return count;
}

double Column::MissingRate() const {
  if (size_ == 0) return 0.0;
  return static_cast<double>(MissingCount()) / static_cast<double>(size_);
}

std::vector<uint64_t> Column::Histogram() const {
  std::vector<uint64_t> hist(cardinality_ + 1, 0);
  for (uint64_t r = 0; r < size_; ++r) {
    ++hist[static_cast<size_t>(Get(r))];
  }
  return hist;
}

uint32_t Column::DistinctCount() const {
  const std::vector<uint64_t> hist = Histogram();
  uint32_t distinct = 0;
  for (size_t v = 1; v < hist.size(); ++v) {
    if (hist[v] > 0) ++distinct;
  }
  return distinct;
}

double Column::NonMissingMean() const {
  uint64_t count = 0;
  double sum = 0.0;
  for (uint64_t r = 0; r < size_; ++r) {
    const Value v = Get(r);
    if (!IsMissing(v)) {
      sum += static_cast<double>(v);
      ++count;
    }
  }
  if (count == 0) return 0.0;
  return sum / static_cast<double>(count);
}

}  // namespace incdb
