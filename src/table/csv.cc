#include "table/csv.h"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <system_error>
#include <vector>

namespace incdb {

namespace {

std::vector<std::string> SplitComma(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream stream(line);
  while (std::getline(stream, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.push_back("");
  return fields;
}

/// Parses a whole field as a decimal integer without throwing. Unlike the
/// std::sto* family this rejects partial parses ("12abc"), leading
/// whitespace, and empty fields, so a malformed cell surfaces as a
/// diagnosable Status instead of a silently mangled value.
Result<int64_t> ParseNumber(std::string_view field) {
  int64_t parsed = 0;
  const char* const first = field.data();
  const char* const last = first + field.size();
  const std::from_chars_result r = std::from_chars(first, last, parsed);
  if (r.ec != std::errc() || r.ptr != last || field.empty()) {
    return Status::InvalidArgument("'" + std::string(field) +
                                   "' is not a decimal integer");
  }
  return parsed;
}

}  // namespace

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out << ',';
    out << schema.attribute(i).name << ':' << schema.attribute(i).cardinality;
  }
  out << '\n';
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      if (i > 0) out << ',';
      const Value v = table.Get(r, i);
      if (IsMissing(v)) {
        out << '?';
      } else {
        out << v;
      }
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Table> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "': missing header line");
  }

  std::vector<AttributeSpec> attrs;
  for (const std::string& field : SplitComma(line)) {
    const size_t colon = field.rfind(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("header field '" + field +
                                     "' lacks ':cardinality'");
    }
    AttributeSpec spec;
    spec.name = field.substr(0, colon);
    const Result<int64_t> cardinality =
        ParseNumber(std::string_view(field).substr(colon + 1));
    if (!cardinality.ok() || *cardinality < 0 ||
        *cardinality > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("header field '" + field +
                                     "' has non-numeric cardinality");
    }
    spec.cardinality = static_cast<uint32_t>(*cardinality);
    attrs.push_back(spec);
  }
  INCDB_ASSIGN_OR_RETURN(Table table, Table::Create(Schema(attrs)));

  std::vector<Value> row(attrs.size());
  uint64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitComma(line);
    if (fields.size() != attrs.size()) {
      return Status::InvalidArgument(
          "'" + path + "' line " + std::to_string(line_no) + ": expected " +
          std::to_string(attrs.size()) + " fields, got " +
          std::to_string(fields.size()));
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      if (fields[i] == "?") {
        row[i] = kMissingValue;
      } else {
        const Result<int64_t> value = ParseNumber(fields[i]);
        if (!value.ok() || *value < std::numeric_limits<Value>::min() ||
            *value > std::numeric_limits<Value>::max()) {
          return Status::InvalidArgument("'" + path + "' line " +
                                         std::to_string(line_no) +
                                         ": bad value '" + fields[i] + "'");
        }
        row[i] = static_cast<Value>(*value);
      }
    }
    INCDB_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

}  // namespace incdb
