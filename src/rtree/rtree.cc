#include "rtree/rtree.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace incdb {

bool Rect::Intersects(const Rect& other) const {
  for (size_t d = 0; d < lo.size(); ++d) {
    if (hi[d] < other.lo[d] || lo[d] > other.hi[d]) return false;
  }
  return true;
}

bool Rect::Contains(const Rect& other) const {
  for (size_t d = 0; d < lo.size(); ++d) {
    if (other.lo[d] < lo[d] || other.hi[d] > hi[d]) return false;
  }
  return true;
}

void Rect::Enlarge(const Rect& other) {
  for (size_t d = 0; d < lo.size(); ++d) {
    lo[d] = std::min(lo[d], other.lo[d]);
    hi[d] = std::max(hi[d], other.hi[d]);
  }
}

double Rect::Volume() const {
  double volume = 1.0;
  for (size_t d = 0; d < lo.size(); ++d) {
    volume *= static_cast<double>(hi[d]) - static_cast<double>(lo[d]) + 1.0;
  }
  return volume;
}

double Rect::Enlargement(const Rect& other) const {
  Rect merged = *this;
  merged.Enlarge(other);
  return merged.Volume() - Volume();
}

struct RTree::Node {
  bool is_leaf = true;
  std::vector<Rect> rects;                      // entry MBRs (points in leaves)
  std::vector<uint32_t> records;                // leaf only
  std::vector<std::unique_ptr<Node>> children;  // internal only

  Rect Mbr() const {
    INCDB_DCHECK(!rects.empty());
    Rect mbr = rects.front();
    for (size_t i = 1; i < rects.size(); ++i) mbr.Enlarge(rects[i]);
    return mbr;
  }
};

RTree::RTree(size_t dims, int max_entries)
    : dims_(dims),
      max_entries_(std::max(max_entries, 4)),
      min_entries_(std::max(2, max_entries_ * 2 / 5)) {
  root_ = std::make_unique<Node>();
  num_nodes_ = 1;
}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

RTree::Node* RTree::ChooseLeaf(Node* node, const Rect& rect,
                               std::vector<Node*>* path) {
  path->push_back(node);
  while (!node->is_leaf) {
    // Guttman: descend into the child needing least enlargement; break ties
    // by smaller volume.
    size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node->rects.size(); ++i) {
      const double enlargement = node->rects[i].Enlargement(rect);
      const double volume = node->rects[i].Volume();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && volume < best_volume)) {
        best = i;
        best_enlargement = enlargement;
        best_volume = volume;
      }
    }
    node = node->children[best].get();
    path->push_back(node);
  }
  return node;
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) {
  // Guttman quadratic split.
  const size_t count = node->rects.size();
  INCDB_DCHECK(count >= 2);

  // PickSeeds: the pair wasting the most volume if grouped together.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = i + 1; j < count; ++j) {
      Rect merged = node->rects[i];
      merged.Enlarge(node->rects[j]);
      const double waste = merged.Volume() - node->rects[i].Volume() -
                           node->rects[j].Volume();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto right = std::make_unique<Node>();
  right->is_leaf = node->is_leaf;

  std::vector<Rect> rects = std::move(node->rects);
  std::vector<uint32_t> records = std::move(node->records);
  std::vector<std::unique_ptr<Node>> children = std::move(node->children);
  node->rects.clear();
  node->records.clear();
  node->children.clear();

  auto assign = [&](Node* target, size_t i) {
    target->rects.push_back(rects[i]);
    if (target->is_leaf) {
      target->records.push_back(records[i]);
    } else {
      target->children.push_back(std::move(children[i]));
    }
  };

  std::vector<bool> taken(count, false);
  assign(node, seed_a);
  assign(right.get(), seed_b);
  taken[seed_a] = taken[seed_b] = true;
  Rect left_mbr = rects[seed_a];
  Rect right_mbr = rects[seed_b];
  size_t remaining = count - 2;

  while (remaining > 0) {
    // If one group must take all remaining entries to reach min fill, do so.
    const size_t left_need =
        min_entries_ > static_cast<int>(node->rects.size())
            ? static_cast<size_t>(min_entries_) - node->rects.size()
            : 0;
    const size_t right_need =
        min_entries_ > static_cast<int>(right->rects.size())
            ? static_cast<size_t>(min_entries_) - right->rects.size()
            : 0;
    Node* forced = nullptr;
    if (left_need == remaining) forced = node;
    if (right_need == remaining) forced = right.get();

    // PickNext: the entry with the greatest preference for one group.
    size_t pick = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < count; ++i) {
      if (taken[i]) continue;
      const double d_left = left_mbr.Enlargement(rects[i]);
      const double d_right = right_mbr.Enlargement(rects[i]);
      const double diff = std::abs(d_left - d_right);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    Node* target = forced;
    if (target == nullptr) {
      const double d_left = left_mbr.Enlargement(rects[pick]);
      const double d_right = right_mbr.Enlargement(rects[pick]);
      if (d_left < d_right) {
        target = node;
      } else if (d_right < d_left) {
        target = right.get();
      } else {
        target = node->rects.size() <= right->rects.size() ? node
                                                           : right.get();
      }
    }
    assign(target, pick);
    if (target == node) {
      left_mbr.Enlarge(rects[pick]);
    } else {
      right_mbr.Enlarge(rects[pick]);
    }
    taken[pick] = true;
    --remaining;
  }
  ++num_nodes_;
  return right;
}

void RTree::Insert(const std::vector<int32_t>& point, uint32_t record) {
  INCDB_CHECK(point.size() == dims_);
  const Rect rect = Rect::Point(point);
  std::vector<Node*> path;
  Node* leaf = ChooseLeaf(root_.get(), rect, &path);
  leaf->rects.push_back(rect);
  leaf->records.push_back(record);
  ++size_;

  // Split overfull nodes bottom-up along the insertion path.
  for (size_t level = path.size(); level-- > 0;) {
    Node* node = path[level];
    if (static_cast<int>(node->rects.size()) <= max_entries_) break;
    std::unique_ptr<Node> right = SplitNode(node);
    if (level == 0) {
      // Root split: grow the tree.
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->rects.push_back(root_->Mbr());
      new_root->rects.push_back(right->Mbr());
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(right));
      root_ = std::move(new_root);
      ++num_nodes_;
      break;
    }
    Node* parent = path[level - 1];
    // Locate `node` in its parent to refresh its MBR, then add the sibling.
    for (size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i].get() == node) {
        parent->rects[i] = node->Mbr();
        break;
      }
    }
    parent->rects.push_back(right->Mbr());
    parent->children.push_back(std::move(right));
  }
  AdjustPath(path);
}

void RTree::AdjustPath(const std::vector<Node*>& path) {
  // Refresh MBRs bottom-up (cheap relative to insert cost at our scale).
  for (size_t level = path.size(); level-- > 1;) {
    Node* node = path[level];
    Node* parent = path[level - 1];
    for (size_t i = 0; i < parent->children.size(); ++i) {
      if (parent->children[i].get() == node) {
        parent->rects[i] = node->Mbr();
        break;
      }
    }
  }
}

uint64_t RTree::RangeSearch(const Rect& box,
                            std::vector<uint32_t>* out) const {
  INCDB_CHECK(box.lo.size() == dims_);
  uint64_t nodes_visited = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++nodes_visited;
    if (node->is_leaf) {
      for (size_t i = 0; i < node->rects.size(); ++i) {
        if (box.Intersects(node->rects[i])) out->push_back(node->records[i]);
      }
    } else {
      for (size_t i = 0; i < node->rects.size(); ++i) {
        if (box.Intersects(node->rects[i])) {
          stack.push_back(node->children[i].get());
        }
      }
    }
  }
  return nodes_visited;
}

int RTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

uint64_t RTree::SizeInBytes() const {
  uint64_t bytes = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    bytes += sizeof(Node) +
             node->rects.size() * dims_ * 2 * sizeof(int32_t) +
             node->records.size() * sizeof(uint32_t) +
             node->children.size() * sizeof(void*);
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return bytes;
}

Status RTree::CheckInvariants() const {
  struct Frame {
    const Node* node;
    int depth;
  };
  const int leaf_depth = height();
  uint64_t entries = 0;
  std::vector<Frame> stack = {{root_.get(), 1}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node* node = frame.node;
    if (static_cast<int>(node->rects.size()) > max_entries_) {
      return Status::Internal("node overfull");
    }
    const bool is_root = node == root_.get();
    if (!is_root && static_cast<int>(node->rects.size()) < min_entries_) {
      return Status::Internal("node underfull");
    }
    if (node->is_leaf) {
      if (frame.depth != leaf_depth) {
        return Status::Internal("leaves at uneven depth");
      }
      if (node->rects.size() != node->records.size()) {
        return Status::Internal("leaf rects/records size mismatch");
      }
      entries += node->records.size();
    } else {
      if (node->rects.size() != node->children.size()) {
        return Status::Internal("internal rects/children size mismatch");
      }
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (!node->rects[i].Contains(node->children[i]->Mbr())) {
          return Status::Internal("MBR does not cover child");
        }
        stack.push_back({node->children[i].get(), frame.depth + 1});
      }
    }
  }
  if (entries != size_) return Status::Internal("entry count mismatch");
  return Status::OK();
}

}  // namespace incdb
