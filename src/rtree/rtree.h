#ifndef INCDB_RTREE_RTREE_H_
#define INCDB_RTREE_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace incdb {

/// Axis-aligned hyper-rectangle with integer coordinates.
struct Rect {
  std::vector<int32_t> lo;
  std::vector<int32_t> hi;

  static Rect Point(const std::vector<int32_t>& coords) {
    return Rect{coords, coords};
  }

  bool Intersects(const Rect& other) const;
  bool Contains(const Rect& other) const;
  /// Grows to cover `other`.
  void Enlarge(const Rect& other);
  /// Volume (product of extents, each extent counted as hi-lo+1 to keep
  /// points non-degenerate); computed in double to avoid overflow.
  double Volume() const;
  /// Volume increase if enlarged to cover `other`.
  double Enlargement(const Rect& other) const;
};

/// Guttman R-tree (quadratic split) over integer point data.
///
/// This is the classical hierarchical multi-dimensional index the paper's
/// motivating experiment (Fig. 1) is built on: records with missing values
/// are mapped to a sentinel coordinate and inserted as points, and the
/// resulting bounding-box overlap is what destroys query performance. The
/// node-access count returned by RangeSearch is the cost model Fig. 1's
/// normalized execution times are derived from.
class RTree {
 public:
  /// `dims` = dimensionality of the indexed points; `max_entries` = node
  /// capacity M (min fill is M * 0.4, Guttman's recommendation).
  explicit RTree(size_t dims, int max_entries = 16);
  ~RTree();

  // Defined in the .cc (Node is incomplete here).
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Inserts a point with the given record id. The point must have dims()
  /// coordinates.
  void Insert(const std::vector<int32_t>& point, uint32_t record);

  /// Appends to `out` the record ids of all points inside `box` (inclusive
  /// bounds). Returns the number of nodes visited.
  uint64_t RangeSearch(const Rect& box, std::vector<uint32_t>* out) const;

  size_t dims() const { return dims_; }
  uint64_t size() const { return size_; }
  uint64_t num_nodes() const { return num_nodes_; }
  int height() const;

  /// Approximate memory footprint in bytes.
  uint64_t SizeInBytes() const;

  /// Structural validation: MBRs cover children, leaves at equal depth,
  /// fill bounds respected. Used by the test suite.
  Status CheckInvariants() const;

 private:
  struct Node;

  Node* ChooseLeaf(Node* node, const Rect& rect, std::vector<Node*>* path);
  std::unique_ptr<Node> SplitNode(Node* node);
  void AdjustPath(const std::vector<Node*>& path);

  size_t dims_;
  int max_entries_;
  int min_entries_;
  std::unique_ptr<Node> root_;
  uint64_t size_ = 0;
  uint64_t num_nodes_ = 0;
};

}  // namespace incdb

#endif  // INCDB_RTREE_RTREE_H_
