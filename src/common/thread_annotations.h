#ifndef INCDB_COMMON_THREAD_ANNOTATIONS_H_
#define INCDB_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

/// Clang Thread Safety Analysis annotations (-Wthread-safety), no-ops on
/// every other compiler. The project's locking invariants — "writer state
/// only under writer_mu", "the published head pointer only under head_mu",
/// "appends only from the single-writer role" — are declared with these
/// macros so a lock-discipline violation is a *compile error* on the clang
/// CI cells (which build with -Wthread-safety -Werror), not a TSan find.
///
/// How to annotate a new mutex, and how to suppress a false positive, is
/// documented in docs/STATIC_ANALYSIS.md.
///
/// The analysis only understands annotated capabilities, so lock state that
/// should participate must use incdb::Mutex / incdb::MutexLock below rather
/// than raw std::mutex / std::lock_guard.

#if defined(__clang__)
#define INCDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define INCDB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a class to be a capability ("mutex", or a fictitious role such
/// as "role" for single-writer protocols).
#define INCDB_CAPABILITY(name) INCDB_THREAD_ANNOTATION(capability(name))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define INCDB_SCOPED_CAPABILITY INCDB_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be read or written while holding the given
/// capability.
#define INCDB_GUARDED_BY(x) INCDB_THREAD_ANNOTATION(guarded_by(x))

/// The pointee of the annotated pointer field is protected by the given
/// capability (the pointer itself is not).
#define INCDB_PT_GUARDED_BY(x) INCDB_THREAD_ANNOTATION(pt_guarded_by(x))

/// The annotated function may only be called while holding the given
/// capability exclusively / shared.
#define INCDB_REQUIRES(...) \
  INCDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define INCDB_REQUIRES_SHARED(...) \
  INCDB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires / releases the given capability.
#define INCDB_ACQUIRE(...) \
  INCDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define INCDB_ACQUIRE_SHARED(...) \
  INCDB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define INCDB_RELEASE(...) \
  INCDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define INCDB_RELEASE_SHARED(...) \
  INCDB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The annotated function must NOT be called while holding the given
/// capability (it acquires it itself; prevents self-deadlock).
#define INCDB_EXCLUDES(...) INCDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The annotated function returns a reference to the given capability
/// (accessor pattern: callers lock through the accessor).
#define INCDB_RETURN_CAPABILITY(x) INCDB_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the protocol is sound (and is reviewed
/// by tools/lint.py's suppression audit).
#define INCDB_NO_THREAD_SAFETY_ANALYSIS \
  INCDB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace incdb {

/// std::mutex wrapper that participates in thread safety analysis. Same
/// cost, but lock/unlock sites and GUARDED_BY fields are now checked at
/// compile time on clang.
class INCDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() INCDB_ACQUIRE() { mu_.lock(); }
  void Unlock() INCDB_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for incdb::Mutex (std::lock_guard is invisible to the
/// analysis; this is not).
class INCDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) INCDB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() INCDB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// A fictitious capability modelling an exclusive *role* rather than a
/// lock: acquiring it costs nothing at runtime, but functions annotated
/// INCDB_REQUIRES(role) can only be called by code that explicitly claims
/// the role, making single-writer protocols (table appends, the post-join
/// stats merge in the plan executor) visible to the compiler. The analysis
/// is per-thread; cross-thread exclusion is still the job of the mutex or
/// protocol that hands the role over (and of TSan).
class INCDB_CAPABILITY("role") ThreadRole {
 public:
  ThreadRole() = default;
  // Roles are stateless: copying the enclosing object (Column, Table) must
  // stay possible, and the copy starts unclaimed like any fresh role.
  ThreadRole(const ThreadRole&) {}
  ThreadRole& operator=(const ThreadRole&) { return *this; }

  void Acquire() INCDB_ACQUIRE() {}
  void AcquireShared() INCDB_ACQUIRE_SHARED() {}
  void Release() INCDB_RELEASE() {}
  void ReleaseShared() INCDB_RELEASE_SHARED() {}
};

/// RAII claim of a ThreadRole for one scope.
class INCDB_SCOPED_CAPABILITY ScopedRole {
 public:
  explicit ScopedRole(ThreadRole& role) INCDB_ACQUIRE(role) : role_(role) {
    role_.Acquire();
  }
  ~ScopedRole() INCDB_RELEASE() { role_.Release(); }

  ScopedRole(const ScopedRole&) = delete;
  ScopedRole& operator=(const ScopedRole&) = delete;

 private:
  ThreadRole& role_;
};

}  // namespace incdb

#endif  // INCDB_COMMON_THREAD_ANNOTATIONS_H_
