#ifndef INCDB_COMMON_IO_H_
#define INCDB_COMMON_IO_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace incdb {

/// Little-endian binary writer over a std::ostream. Used by the index
/// Save() paths; the paper's index-size metric is "the size of the
/// requisite index files on disk", which these produce.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(out) {}

  void WriteU8(uint8_t value) { WriteRaw(&value, 1); }
  void WriteU32(uint32_t value);
  void WriteU64(uint64_t value);
  void WriteI32(int32_t value) { WriteU32(static_cast<uint32_t>(value)); }
  void WriteDouble(double value);
  /// Length-prefixed (u64) byte string.
  void WriteString(const std::string& value);
  /// Length-prefixed (u64) vector of u32.
  void WriteU32Vector(const std::vector<uint32_t>& values);
  /// Length-prefixed (u64) vector of u64.
  void WriteU64Vector(const std::vector<uint64_t>& values);
  /// Length-prefixed (u64) vector of i32.
  void WriteI32Vector(const std::vector<int32_t>& values);

  /// OK unless a stream write failed at any point.
  Status status() const;

 private:
  void WriteRaw(const void* data, size_t size);

  std::ostream& out_;
};

/// Little-endian binary reader matching BinaryWriter. All Read* methods
/// return an error on truncated input; limits guard against corrupted
/// length prefixes.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(in) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int32_t> ReadI32();
  Result<double> ReadDouble();
  /// Rejects lengths above `max_len` (corruption guard).
  Result<std::string> ReadString(uint64_t max_len = 1 << 20);
  Result<std::vector<uint32_t>> ReadU32Vector(uint64_t max_len = 1ull << 32);
  Result<std::vector<uint64_t>> ReadU64Vector(uint64_t max_len = 1ull << 32);
  Result<std::vector<int32_t>> ReadI32Vector(uint64_t max_len = 1ull << 32);

 private:
  Status ReadRaw(void* data, size_t size);

  std::istream& in_;
};

}  // namespace incdb

#endif  // INCDB_COMMON_IO_H_
