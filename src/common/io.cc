#include "common/io.h"

#include <cstring>

namespace incdb {

namespace {

// The on-disk format is explicitly little-endian; on big-endian hosts these
// helpers would need byte swaps. All current targets are little-endian.
template <typename T>
void EncodeLE(T value, unsigned char* out) {
  for (size_t i = 0; i < sizeof(T); ++i) {
    out[i] = static_cast<unsigned char>(value >> (8 * i));
  }
}

template <typename T>
T DecodeLE(const unsigned char* in) {
  T value = 0;
  for (size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(in[i]) << (8 * i);
  }
  return value;
}

}  // namespace

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  out_.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
}

void BinaryWriter::WriteU32(uint32_t value) {
  unsigned char buf[4];
  EncodeLE(value, buf);
  WriteRaw(buf, sizeof(buf));
}

void BinaryWriter::WriteU64(uint64_t value) {
  unsigned char buf[8];
  EncodeLE(value, buf);
  WriteRaw(buf, sizeof(buf));
}

void BinaryWriter::WriteDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  WriteU64(bits);
}

void BinaryWriter::WriteString(const std::string& value) {
  WriteU64(value.size());
  WriteRaw(value.data(), value.size());
}

void BinaryWriter::WriteU32Vector(const std::vector<uint32_t>& values) {
  WriteU64(values.size());
  for (uint32_t v : values) WriteU32(v);
}

void BinaryWriter::WriteU64Vector(const std::vector<uint64_t>& values) {
  WriteU64(values.size());
  for (uint64_t v : values) WriteU64(v);
}

void BinaryWriter::WriteI32Vector(const std::vector<int32_t>& values) {
  WriteU64(values.size());
  for (int32_t v : values) WriteI32(v);
}

Status BinaryWriter::status() const {
  if (!out_) return Status::IOError("stream write failed");
  return Status::OK();
}

Status BinaryReader::ReadRaw(void* data, size_t size) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<size_t>(in_.gcount()) != size) {
    return Status::IOError("unexpected end of input");
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  uint8_t value;
  INCDB_RETURN_IF_ERROR(ReadRaw(&value, 1));
  return value;
}

Result<uint32_t> BinaryReader::ReadU32() {
  unsigned char buf[4];
  INCDB_RETURN_IF_ERROR(ReadRaw(buf, sizeof(buf)));
  return DecodeLE<uint32_t>(buf);
}

Result<uint64_t> BinaryReader::ReadU64() {
  unsigned char buf[8];
  INCDB_RETURN_IF_ERROR(ReadRaw(buf, sizeof(buf)));
  return DecodeLE<uint64_t>(buf);
}

Result<int32_t> BinaryReader::ReadI32() {
  INCDB_ASSIGN_OR_RETURN(uint32_t raw, ReadU32());
  return static_cast<int32_t>(raw);
}

Result<double> BinaryReader::ReadDouble() {
  INCDB_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string> BinaryReader::ReadString(uint64_t max_len) {
  INCDB_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > max_len) {
    return Status::IOError("string length " + std::to_string(len) +
                           " exceeds limit (corrupted input?)");
  }
  std::string value(len, '\0');
  INCDB_RETURN_IF_ERROR(ReadRaw(value.data(), len));
  return value;
}

Result<std::vector<uint32_t>> BinaryReader::ReadU32Vector(uint64_t max_len) {
  INCDB_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > max_len) {
    return Status::IOError("vector length " + std::to_string(len) +
                           " exceeds limit (corrupted input?)");
  }
  std::vector<uint32_t> values(len);
  for (uint64_t i = 0; i < len; ++i) {
    INCDB_ASSIGN_OR_RETURN(values[i], ReadU32());
  }
  return values;
}

Result<std::vector<uint64_t>> BinaryReader::ReadU64Vector(uint64_t max_len) {
  INCDB_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > max_len) {
    return Status::IOError("vector length " + std::to_string(len) +
                           " exceeds limit (corrupted input?)");
  }
  std::vector<uint64_t> values(len);
  for (uint64_t i = 0; i < len; ++i) {
    INCDB_ASSIGN_OR_RETURN(values[i], ReadU64());
  }
  return values;
}

Result<std::vector<int32_t>> BinaryReader::ReadI32Vector(uint64_t max_len) {
  INCDB_ASSIGN_OR_RETURN(uint64_t len, ReadU64());
  if (len > max_len) {
    return Status::IOError("vector length " + std::to_string(len) +
                           " exceeds limit (corrupted input?)");
  }
  std::vector<int32_t> values(len);
  for (uint64_t i = 0; i < len; ++i) {
    INCDB_ASSIGN_OR_RETURN(values[i], ReadI32());
  }
  return values;
}

}  // namespace incdb
