#ifndef INCDB_COMMON_RNG_H_
#define INCDB_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace incdb {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All data generation and workload construction in incdb is driven by this
/// generator so that experiments are exactly reproducible from a seed. Not
/// cryptographically secure; not thread-safe (use one Rng per thread).
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical streams.
  explicit Rng(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Random permutation of {0, 1, ..., n-1} (Fisher-Yates).
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t state_[4];
};

/// Samples integers in [1, cardinality] from a Zipf(theta) distribution via a
/// precomputed inverse CDF. theta = 0 degenerates to uniform; larger theta
/// means heavier skew toward small ranks.
///
/// Used to synthesize census-like skewed attributes (see DESIGN.md §3).
class ZipfSampler {
 public:
  ZipfSampler(uint32_t cardinality, double theta);

  /// Draws one value in [1, cardinality].
  uint32_t Sample(Rng& rng) const;

  uint32_t cardinality() const { return cardinality_; }
  double theta() const { return theta_; }

 private:
  uint32_t cardinality_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[v-1] = P(X <= v)
};

}  // namespace incdb

#endif  // INCDB_COMMON_RNG_H_
