#ifndef INCDB_COMMON_TIMER_H_
#define INCDB_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace incdb {

/// Monotonic stopwatch for measuring query execution time.
class Timer {
 public:
  /// Starts the stopwatch at construction.
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in nanoseconds since construction or last Reset().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace incdb

#endif  // INCDB_COMMON_TIMER_H_
