#ifndef INCDB_COMMON_STATUS_H_
#define INCDB_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace incdb {

/// Error category carried by a Status.
///
/// The library never throws across public boundaries; every fallible
/// operation returns a Status (or a Result<T>, which bundles a value with a
/// Status), following the RocksDB/Arrow idiom.
///
/// STABLE WIRE CONTRACT: the numeric values are part of the serving
/// protocol (src/server/wire.h returns them verbatim in Error frames), so
/// they are assigned explicitly, never renumbered, and never reused. New
/// codes append at the end with the next free number; a retired code's
/// number is retired with it. tests/common/status_code_golden_test.cc
/// asserts every value — changing one is a deliberate, test-visible act.
enum class StatusCode : uint32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kNotSupported = 5,
  kIOError = 6,
  kInternal = 7,
  /// A cooperative per-request deadline expired — either queued past its
  /// deadline (the server sheds it unexecuted) or caught mid-execution at a
  /// morsel boundary (plan/plan_executor.h ExecOptions::deadline).
  kDeadlineExceeded = 8,
  /// Admission control rejected the request because the server's task queue
  /// was at its high-water mark (backpressure: fail fast instead of
  /// degrading every queued request). Retry against a less loaded server
  /// or after a backoff.
  kOverloaded = 9,
  /// The endpoint exists but cannot serve right now (connection closed,
  /// server draining for shutdown). Transient, unlike kNotFound.
  kUnavailable = 10,
};

/// Widest numeric value a valid StatusCode takes — wire decoding clamps
/// unknown (future) codes to kInternal rather than fabricating enum values.
inline constexpr uint32_t kMaxStatusCode = 10;

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (empty message). Construct error statuses via
/// the named factories, e.g. `Status::InvalidArgument("cardinality must be
/// positive")`.
///
/// The class itself is [[nodiscard]]: any call that returns a Status and
/// drops it on the floor is a compile error under -Werror. Propagate with
/// INCDB_RETURN_IF_ERROR, assert with INCDB_CHECK_OK (common/logging.h), or
/// explain the rare deliberate drop with a named local.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Named factory for the OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  [[nodiscard]] std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status.
///
/// Access the value only after checking `ok()`; accessing the value of an
/// error Result aborts (programming error, not a runtime condition).
///
/// [[nodiscard]] like Status: ignoring a returned Result silently discards
/// both the value and the error it may carry.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value: `Result<int> r = 42;`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; Status::OK() if this holds a value.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace incdb

/// Propagates a non-OK Status to the caller.
#define INCDB_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::incdb::Status _incdb_status = (expr);          \
    if (!_incdb_status.ok()) return _incdb_status;   \
  } while (false)

/// Evaluates a Result<T> expression; on error returns its Status, otherwise
/// binds the value to `lhs`.
#define INCDB_ASSIGN_OR_RETURN(lhs, expr)              \
  INCDB_ASSIGN_OR_RETURN_IMPL(                         \
      INCDB_STATUS_CONCAT(_incdb_result, __LINE__), lhs, expr)

#define INCDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define INCDB_STATUS_CONCAT(a, b) INCDB_STATUS_CONCAT_IMPL(a, b)
#define INCDB_STATUS_CONCAT_IMPL(a, b) a##b

#endif  // INCDB_COMMON_STATUS_H_
