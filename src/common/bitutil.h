#ifndef INCDB_COMMON_BITUTIL_H_
#define INCDB_COMMON_BITUTIL_H_

#include <bit>
#include <cstdint>

namespace incdb {
namespace bitutil {

/// Number of set bits in a 64-bit word.
inline int PopCount(uint64_t word) { return std::popcount(word); }

/// Number of set bits in a 32-bit word.
inline int PopCount32(uint32_t word) { return std::popcount(word); }

/// Index (0-based, from LSB) of the lowest set bit. Undefined for 0.
inline int CountTrailingZeros(uint64_t word) { return std::countr_zero(word); }

/// ceil(a / b) for positive integers.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// ceil(log2(x)) for x >= 1; returns 0 for x == 1.
inline int Log2Ceil(uint64_t x) {
  if (x <= 1) return 0;
  return 64 - std::countl_zero(x - 1);
}

/// Number of bits needed by a VA-file attribute with cardinality `c`:
/// b_i = ceil(lg(c + 1)). The +1 reserves the all-zeros code for missing.
inline int BitsForCardinality(uint64_t c) { return Log2Ceil(c + 1); }

/// A mask with the lowest `n` bits set (n in [0, 64]).
inline uint64_t LowBitsMask(int n) {
  if (n >= 64) return ~uint64_t{0};
  return (uint64_t{1} << n) - 1;
}

}  // namespace bitutil
}  // namespace incdb

#endif  // INCDB_COMMON_BITUTIL_H_
