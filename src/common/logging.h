#ifndef INCDB_COMMON_LOGGING_H_
#define INCDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Aborts with a diagnostic when `cond` is false. Used for programming-error
/// invariants only; runtime conditions are reported via Status.
#define INCDB_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "INCDB_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define INCDB_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "INCDB_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Debug-only check, compiled out in NDEBUG builds.
#ifdef NDEBUG
#define INCDB_DCHECK(cond) \
  do {                     \
  } while (false)
#else
#define INCDB_DCHECK(cond) INCDB_CHECK(cond)
#endif

#endif  // INCDB_COMMON_LOGGING_H_
