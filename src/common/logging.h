#ifndef INCDB_COMMON_LOGGING_H_
#define INCDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

/// Invariant macros. INCDB_CHECK* abort on violated *programming-error*
/// invariants; runtime conditions (bad input, I/O failure, corruption) are
/// reported via Status and propagated with INCDB_RETURN_IF_ERROR instead.
/// The static-analysis gate (docs/STATIC_ANALYSIS.md) bans plain assert()
/// in favour of these: they fire in every build type (DCHECK excepted) and
/// print the file, line, and the violated condition.

/// Aborts with a diagnostic when `cond` is false.
#define INCDB_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "INCDB_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// INCDB_CHECK with an extra human-readable context string.
#define INCDB_CHECK_MSG(cond, msg)                                          \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "INCDB_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Aborts when a Status-returning expression is not OK. For setup paths and
/// tests where failure is a programming error; production code paths should
/// propagate with INCDB_RETURN_IF_ERROR instead.
#define INCDB_CHECK_OK(expr)                                                \
  do {                                                                      \
    const ::incdb::Status _incdb_check_status = (expr);                     \
    if (!_incdb_check_status.ok()) {                                        \
      std::fprintf(stderr, "INCDB_CHECK_OK failed at %s:%d: %s -> %s\n",    \
                   __FILE__, __LINE__, #expr,                               \
                   _incdb_check_status.ToString().c_str());                 \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

/// Debug-only checks, compiled out in NDEBUG builds.
#ifdef NDEBUG
#define INCDB_DCHECK(cond) \
  do {                     \
  } while (false)
#define INCDB_DCHECK_MSG(cond, msg) \
  do {                              \
  } while (false)
#else
#define INCDB_DCHECK(cond) INCDB_CHECK(cond)
#define INCDB_DCHECK_MSG(cond, msg) INCDB_CHECK_MSG(cond, msg)
#endif

#endif  // INCDB_COMMON_LOGGING_H_
