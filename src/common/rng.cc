#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace incdb {

namespace {

// splitmix64, used to expand the user seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  INCDB_CHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = (~uint64_t{0}) - (~uint64_t{0}) % span;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::UniformDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  for (uint32_t i = 0; i < n; ++i) perm[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(UniformInt(0, i - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

ZipfSampler::ZipfSampler(uint32_t cardinality, double theta)
    : cardinality_(cardinality), theta_(theta), cdf_(cardinality) {
  INCDB_CHECK(cardinality >= 1);
  double total = 0.0;
  for (uint32_t v = 1; v <= cardinality; ++v) {
    total += 1.0 / std::pow(static_cast<double>(v), theta);
  }
  double acc = 0.0;
  for (uint32_t v = 1; v <= cardinality; ++v) {
    acc += 1.0 / std::pow(static_cast<double>(v), theta) / total;
    cdf_[v - 1] = acc;
  }
  cdf_[cardinality - 1] = 1.0;  // guard against rounding
}

uint32_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  // Binary search for the first v with cdf_[v-1] >= u.
  uint32_t lo = 0;
  uint32_t hi = cardinality_ - 1;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace incdb
