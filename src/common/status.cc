#include "common/status.h"

namespace incdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace incdb
