// Runtime CPU dispatch for the SIMD kernel layer: a cpuid probe picks the
// best level the machine supports, the INCDB_SIMD environment variable can
// clamp it down (testing / triage), and ForceLevelForTesting swaps the
// table at runtime. The active table is a single atomic pointer, so
// dispatch costs one acquire load per kernel batch.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/simd_isa.h"

namespace incdb {
namespace simd {

namespace {

Level ClampToDetected(Level level) {
  const Level detected = DetectedLevel();
  return static_cast<int>(level) > static_cast<int>(detected) ? detected
                                                              : level;
}

/// INCDB_SIMD parse: empty/unset means "use the detected level"; an
/// unknown value warns once on stderr and is ignored rather than aborting,
/// since the variable may be set globally for an unrelated binary.
Level InitialLevel() {
  const char* env = std::getenv("INCDB_SIMD");
  if (env == nullptr || env[0] == '\0') return DetectedLevel();
  if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
  if (std::strcmp(env, "sse2") == 0) return ClampToDetected(Level::kSse2);
  if (std::strcmp(env, "avx2") == 0) return ClampToDetected(Level::kAvx2);
  std::fprintf(stderr,
               "incdb: ignoring unknown INCDB_SIMD value '%s' "
               "(expected scalar|sse2|avx2)\n",
               env);
  return DetectedLevel();
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

std::string_view LevelToString(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "scalar";
}

Level DetectedLevel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
  if (__builtin_cpu_supports("sse4.2")) return Level::kSse2;
#endif
  return Level::kScalar;
}

const Kernels& KernelsFor(Level level) {
  switch (ClampToDetected(level)) {
    case Level::kAvx2:
      return internal::Avx2Kernels();
    case Level::kSse2:
      return internal::Sse2Kernels();
    case Level::kScalar:
      break;
  }
  return internal::ScalarKernels();
}

const Kernels& ActiveKernels() {
  const Kernels* active = g_active.load(std::memory_order_acquire);
  if (active == nullptr) {
    // Benign race: concurrent first calls resolve the same level from the
    // same environment, so the last store wins with an identical pointer.
    active = &KernelsFor(InitialLevel());
    g_active.store(active, std::memory_order_release);
  }
  return *active;
}

Level ActiveLevel() { return ActiveKernels().level; }

void ForceLevelForTesting(Level level) {
  g_active.store(&KernelsFor(level), std::memory_order_release);
}

}  // namespace simd
}  // namespace incdb
