// Scalar kernel level: the bit-identical reference implementation the
// vectorized levels are property-tested against, and the fallback on CPUs
// (or builds) without SSE4.2/AVX2. Compiled with the project's baseline
// flags only — no ISA options — so it runs anywhere.

#include <bit>
#include <cstddef>
#include <cstdint>

#include "simd/simd_isa.h"

namespace incdb {
namespace simd {
namespace internal {
namespace {

template <typename Op>
void BinaryInto(void* dst, const void* src, size_t bytes, Op op) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    StoreWord(d + i, op(LoadWord(d + i), LoadWord(s + i)));
  }
  if (i < bytes) {
    const size_t tail = bytes - i;
    StorePartialWord(d + i,
                     op(LoadPartialWord(d + i, tail),
                        LoadPartialWord(s + i, tail)),
                     tail);
  }
}

// BinaryInto that also folds every stored word into an OR accumulator and
// returns it (the and_into/andnot_into all-zero probe).
template <typename Op>
uint64_t BinaryIntoAny(void* dst, const void* src, size_t bytes, Op op) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  uint64_t any = 0;
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    const uint64_t r = op(LoadWord(d + i), LoadWord(s + i));
    StoreWord(d + i, r);
    any |= r;
  }
  if (i < bytes) {
    const size_t tail = bytes - i;
    const uint64_t r =
        op(LoadPartialWord(d + i, tail), LoadPartialWord(s + i, tail));
    StorePartialWord(d + i, r, tail);
    any |= r;
  }
  return any;
}

uint64_t AndInto(void* dst, const void* src, size_t bytes) {
  return BinaryIntoAny(dst, src, bytes,
                       [](uint64_t a, uint64_t b) { return a & b; });
}

void OrInto(void* dst, const void* src, size_t bytes) {
  BinaryInto(dst, src, bytes, [](uint64_t a, uint64_t b) { return a | b; });
}

void XorInto(void* dst, const void* src, size_t bytes) {
  BinaryInto(dst, src, bytes, [](uint64_t a, uint64_t b) { return a ^ b; });
}

uint64_t AndNotInto(void* dst, const void* src, size_t bytes) {
  return BinaryIntoAny(dst, src, bytes,
                       [](uint64_t a, uint64_t b) { return a & ~b; });
}

void OrNotMaskInto(void* dst, const void* src, uint64_t mask, size_t bytes) {
  BinaryInto(dst, src, bytes,
             [mask](uint64_t a, uint64_t b) { return a | (~b & mask); });
}

uint64_t Popcount(const void* src, size_t bytes) {
  const auto* s = static_cast<const unsigned char*>(src);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    count += static_cast<uint64_t>(std::popcount(LoadWord(s + i)));
  }
  if (i < bytes) {
    count += static_cast<uint64_t>(
        std::popcount(LoadPartialWord(s + i, bytes - i)));
  }
  return count;
}

size_t ExtractSetBits(const uint64_t* words, size_t n, uint64_t base,
                      uint32_t* out) {
  size_t written = 0;
  for (size_t w = 0; w < n; ++w) {
    const uint64_t word_base = base + 64 * static_cast<uint64_t>(w);
    for (uint64_t word = words[w]; word != 0; word &= word - 1) {
      out[written++] = static_cast<uint32_t>(
          word_base + static_cast<uint64_t>(std::countr_zero(word)));
    }
  }
  return written;
}

constexpr Kernels kScalarKernels = {
    AndInto, OrInto,   XorInto,        AndNotInto,
    OrNotMaskInto, Popcount, ExtractSetBits, Level::kScalar,
};

}  // namespace

const Kernels& ScalarKernels() { return kScalarKernels; }

}  // namespace internal
}  // namespace simd
}  // namespace incdb
