#ifndef INCDB_SIMD_SIMD_H_
#define INCDB_SIMD_SIMD_H_

#include <bit>
#include <cstdint>
#include <string_view>

namespace incdb {
namespace simd {

/// Instruction-set dispatch levels, ordered: a higher level strictly
/// extends the lower one. The scalar level is the bit-identical reference
/// implementation every vectorized level is tested against.
enum class Level : int {
  kScalar = 0,
  kSse2 = 1,  // 128-bit ops; popcount via the hardware POPCNT instruction
  kAvx2 = 2,  // 256-bit ops; Harley–Seal block popcount
};

/// "scalar" / "sse2" / "avx2".
std::string_view LevelToString(Level level);

/// Best level the running CPU supports (cpuid probe; scalar off x86).
Level DetectedLevel();

/// The level the kernel table actually dispatches to. Resolved once on
/// first use: DetectedLevel() clamped down by the INCDB_SIMD environment
/// variable ("scalar" | "sse2" | "avx2"). An override above what the CPU
/// supports is clamped to DetectedLevel(), never up.
Level ActiveLevel();

/// Swaps the active kernel table, clamped to DetectedLevel(). Test/bench
/// hook — the runtime equivalent of setting INCDB_SIMD before startup.
void ForceLevelForTesting(Level level);

/// Runtime-dispatched block kernels over packed little-endian 64-bit word
/// buffers. Byte counts need not be multiples of the vector width (or even
/// of 8): every implementation handles the tail scalar, so callers can pass
/// exact payload sizes (e.g. an odd number of 32-bit WAH group words).
/// All levels are bit-identical by contract (tier1-simd property tests).
struct Kernels {
  /// dst &= src over `bytes` bytes. Returns the bitwise OR of the resulting
  /// destination, folded as zero-padded little-endian 64-bit words — zero
  /// iff the written range is now all-zero. The fold is free in-register
  /// and lets AND-fusion early-exit without re-scanning the buffer.
  uint64_t (*and_into)(void* dst, const void* src, size_t bytes);
  /// dst |= src.
  void (*or_into)(void* dst, const void* src, size_t bytes);
  /// dst ^= src.
  void (*xor_into)(void* dst, const void* src, size_t bytes);
  /// dst &= ~src (the fused complement read of AND-negated operands).
  /// Returns the same all-zero fold as and_into.
  uint64_t (*andnot_into)(void* dst, const void* src, size_t bytes);
  /// dst |= ~src & mask, `mask` replicated every 8 bytes. The mask keeps
  /// complemented WAH group words from leaking bits into the fill-flag
  /// positions (callers pass the replicated kFullLiteral pattern).
  void (*ornot_mask_into)(void* dst, const void* src, uint64_t mask,
                          size_t bytes);
  /// Total set bits over `bytes` bytes (Harley–Seal at the AVX2 level).
  uint64_t (*popcount)(const void* src, size_t bytes);
  /// Appends `base + bit index` of every set bit of words[0..n) to `out`
  /// (caller guarantees room for the full popcount); returns the number
  /// written. Indices ascend; bit i of words[w] is index base + 64*w + i.
  size_t (*extract_set_bits)(const uint64_t* words, size_t n, uint64_t base,
                             uint32_t* out);
  Level level;
};

/// The table selected at startup (see ActiveLevel()).
const Kernels& ActiveKernels();

/// The table for a specific level, clamped to DetectedLevel() so a caller
/// can never obtain kernels the CPU cannot execute.
const Kernels& KernelsFor(Level level);

/// Calls `fn(base + i)` for every set bit of `word`, ascending. The inline
/// companion of Kernels::extract_set_bits for callback-shaped consumers:
/// an all-ones word (a decoded 1-fill chunk) is emitted as a plain counted
/// loop instead of 64 find-first-set iterations.
template <typename Fn>
inline void ForEachSetBitInWord(uint64_t word, uint64_t base, Fn&& fn) {
  if (word == ~uint64_t{0}) {
    for (int i = 0; i < 64; ++i) fn(base + static_cast<uint64_t>(i));
    return;
  }
  while (word != 0) {
    fn(base + static_cast<uint64_t>(std::countr_zero(word)));
    word &= word - 1;
  }
}

}  // namespace simd
}  // namespace incdb

#endif  // INCDB_SIMD_SIMD_H_
