#ifndef INCDB_SIMD_SIMD_ISA_H_
#define INCDB_SIMD_SIMD_ISA_H_

#include <cstdint>
#include <cstring>

#include "simd/simd.h"

// Internal seam between the dispatcher and the per-ISA translation units.
// Each ISA's kernels live in their own .cc compiled with that ISA's flags
// (-msse4.2 / -mavx2); this header stays intrinsic-free so including it
// never leaks ISA requirements into other translation units. When a TU is
// built without its ISA (non-x86 targets), its accessor returns the scalar
// table, so the dispatcher can link unconditionally.

namespace incdb {
namespace simd {
namespace internal {

const Kernels& ScalarKernels();
const Kernels& Sse2Kernels();
const Kernels& Avx2Kernels();

/// Unaligned, size-exact word I/O for the sub-8-byte buffer tails every
/// kernel level shares. memcpy keeps them defined behavior on any
/// alignment; at -O1+ both compile to plain moves.
inline uint64_t LoadPartialWord(const void* src, size_t bytes) {
  uint64_t word = 0;
  std::memcpy(&word, src, bytes);
  return word;
}

inline void StorePartialWord(void* dst, uint64_t word, size_t bytes) {
  std::memcpy(dst, &word, bytes);
}

inline uint64_t LoadWord(const void* src) {
  uint64_t word;
  std::memcpy(&word, src, sizeof(word));
  return word;
}

inline void StoreWord(void* dst, uint64_t word) {
  std::memcpy(dst, &word, sizeof(word));
}

}  // namespace internal
}  // namespace simd
}  // namespace incdb

#endif  // INCDB_SIMD_SIMD_ISA_H_
