// AVX2 kernel level: 256-bit logical ops, Harley–Seal block popcount, and
// zero-block skipping in set-bit extraction. This translation unit alone is
// compiled with -mavx2 -mpopcnt (src/simd/CMakeLists.txt); the dispatcher
// only hands its table out after a cpuid check. On targets built without
// the ISA the accessor degrades to the scalar table.

#include "simd/simd_isa.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace incdb {
namespace simd {
namespace internal {
namespace {

template <typename VecOp, typename WordOp>
void BinaryInto(void* dst, const void* src, size_t bytes, VecOp vec_op,
                WordOp word_op) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  size_t i = 0;
  for (; i + 64 <= bytes; i += 64) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i + 32));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i), vec_op(a0, b0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i + 32),
                        vec_op(a1, b1));
  }
  for (; i + 8 <= bytes; i += 8) {
    StoreWord(d + i, word_op(LoadWord(d + i), LoadWord(s + i)));
  }
  if (i < bytes) {
    const size_t tail = bytes - i;
    StorePartialWord(d + i,
                     word_op(LoadPartialWord(d + i, tail),
                             LoadPartialWord(s + i, tail)),
                     tail);
  }
}

// BinaryInto that also folds every stored block into an OR accumulator and
// returns it collapsed to 64 bits (the and_into/andnot_into all-zero
// probe) — one extra VPOR per block.
template <typename VecOp, typename WordOp>
uint64_t BinaryIntoAny(void* dst, const void* src, size_t bytes, VecOp vec_op,
                       WordOp word_op) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  __m256i vany = _mm256_setzero_si256();
  uint64_t any = 0;
  size_t i = 0;
  for (; i + 64 <= bytes; i += 64) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i + 32));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 32));
    const __m256i r0 = vec_op(a0, b0);
    const __m256i r1 = vec_op(a1, b1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i), r0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i + 32), r1);
    vany = _mm256_or_si256(vany, _mm256_or_si256(r0, r1));
  }
  for (; i + 8 <= bytes; i += 8) {
    const uint64_t r = word_op(LoadWord(d + i), LoadWord(s + i));
    StoreWord(d + i, r);
    any |= r;
  }
  if (i < bytes) {
    const size_t tail = bytes - i;
    const uint64_t r =
        word_op(LoadPartialWord(d + i, tail), LoadPartialWord(s + i, tail));
    StorePartialWord(d + i, r, tail);
    any |= r;
  }
  const __m128i halves = _mm_or_si128(_mm256_castsi256_si128(vany),
                                      _mm256_extracti128_si256(vany, 1));
  any |= static_cast<uint64_t>(_mm_cvtsi128_si64(halves));
  any |= static_cast<uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(halves, halves)));
  return any;
}

uint64_t AndInto(void* dst, const void* src, size_t bytes) {
  return BinaryIntoAny(
      dst, src, bytes,
      [](__m256i a, __m256i b) { return _mm256_and_si256(a, b); },
      [](uint64_t a, uint64_t b) { return a & b; });
}

void OrInto(void* dst, const void* src, size_t bytes) {
  BinaryInto(
      dst, src, bytes,
      [](__m256i a, __m256i b) { return _mm256_or_si256(a, b); },
      [](uint64_t a, uint64_t b) { return a | b; });
}

void XorInto(void* dst, const void* src, size_t bytes) {
  BinaryInto(
      dst, src, bytes,
      [](__m256i a, __m256i b) { return _mm256_xor_si256(a, b); },
      [](uint64_t a, uint64_t b) { return a ^ b; });
}

uint64_t AndNotInto(void* dst, const void* src, size_t bytes) {
  return BinaryIntoAny(
      dst, src, bytes,
      // _mm256_andnot_si256(b, a) computes ~b & a.
      [](__m256i a, __m256i b) { return _mm256_andnot_si256(b, a); },
      [](uint64_t a, uint64_t b) { return a & ~b; });
}

void OrNotMaskInto(void* dst, const void* src, uint64_t mask, size_t bytes) {
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  BinaryInto(
      dst, src, bytes,
      [vmask](__m256i a, __m256i b) {
        return _mm256_or_si256(a, _mm256_andnot_si256(b, vmask));
      },
      [mask](uint64_t a, uint64_t b) { return a | (~b & mask); });
}

// Per-lane byte popcount via the classic 4-bit table lookup (Muła), then a
// horizontal sum of 8-byte groups.
inline __m256i PopcountLanes(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i cnt =
      _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                      _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

// Carry-save adder: (h, l) = full-adder of (a, b, c) per bit position.
inline void Csa(__m256i& h, __m256i& l, __m256i a, __m256i b, __m256i c) {
  const __m256i u = _mm256_xor_si256(a, b);
  h = _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c));
  l = _mm256_xor_si256(u, c);
}

inline uint64_t HorizontalSum(__m256i v) {
  return static_cast<uint64_t>(_mm256_extract_epi64(v, 0)) +
         static_cast<uint64_t>(_mm256_extract_epi64(v, 1)) +
         static_cast<uint64_t>(_mm256_extract_epi64(v, 2)) +
         static_cast<uint64_t>(_mm256_extract_epi64(v, 3));
}

// Harley–Seal: carry-save adders compress 16 input vectors (512 bytes) per
// round into a ones/twos/fours/eights counter tree, so the expensive
// per-byte popcount lookup only touches the "sixteens" stream — 1/16th of
// the data — plus the residual counters once at the end.
uint64_t Popcount(const void* src, size_t bytes) {
  const auto* s = static_cast<const unsigned char*>(src);
  size_t i = 0;
  __m256i total = _mm256_setzero_si256();
  __m256i ones = _mm256_setzero_si256();
  __m256i twos = _mm256_setzero_si256();
  __m256i fours = _mm256_setzero_si256();
  __m256i eights = _mm256_setzero_si256();
  const auto load = [&](size_t offset) {
    return _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(s + i + offset));
  };
  for (; i + 512 <= bytes; i += 512) {
    __m256i twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
    Csa(twos_a, ones, ones, load(0), load(32));
    Csa(twos_b, ones, ones, load(64), load(96));
    Csa(fours_a, twos, twos, twos_a, twos_b);
    Csa(twos_a, ones, ones, load(128), load(160));
    Csa(twos_b, ones, ones, load(192), load(224));
    Csa(fours_b, twos, twos, twos_a, twos_b);
    Csa(eights_a, fours, fours, fours_a, fours_b);
    Csa(twos_a, ones, ones, load(256), load(288));
    Csa(twos_b, ones, ones, load(320), load(352));
    Csa(fours_a, twos, twos, twos_a, twos_b);
    Csa(twos_a, ones, ones, load(384), load(416));
    Csa(twos_b, ones, ones, load(448), load(480));
    Csa(fours_b, twos, twos, twos_a, twos_b);
    Csa(eights_b, fours, fours, fours_a, fours_b);
    Csa(sixteens, eights, eights, eights_a, eights_b);
    total = _mm256_add_epi64(total, PopcountLanes(sixteens));
  }
  total = _mm256_slli_epi64(total, 4);
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(PopcountLanes(eights), 3));
  total = _mm256_add_epi64(total,
                           _mm256_slli_epi64(PopcountLanes(fours), 2));
  total = _mm256_add_epi64(total, _mm256_slli_epi64(PopcountLanes(twos), 1));
  total = _mm256_add_epi64(total, PopcountLanes(ones));
  uint64_t count = HorizontalSum(total);
  for (; i + 32 <= bytes; i += 32) {
    count += HorizontalSum(PopcountLanes(load(0)));
  }
  for (; i + 8 <= bytes; i += 8) {
    count += static_cast<uint64_t>(_mm_popcnt_u64(LoadWord(s + i)));
  }
  if (i < bytes) {
    count += static_cast<uint64_t>(
        _mm_popcnt_u64(LoadPartialWord(s + i, bytes - i)));
  }
  return count;
}

size_t ExtractSetBits(const uint64_t* words, size_t n, uint64_t base,
                      uint32_t* out) {
  size_t written = 0;
  size_t w = 0;
  // Sparse regions: skip four all-zero words per VPTEST.
  for (; w + 4 <= n; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + w));
    if (_mm256_testz_si256(v, v)) continue;
    for (size_t j = w; j < w + 4; ++j) {
      const uint64_t word_base = base + 64 * static_cast<uint64_t>(j);
      for (uint64_t word = words[j]; word != 0; word &= word - 1) {
        out[written++] = static_cast<uint32_t>(
            word_base + static_cast<uint64_t>(__builtin_ctzll(word)));
      }
    }
  }
  for (; w < n; ++w) {
    const uint64_t word_base = base + 64 * static_cast<uint64_t>(w);
    for (uint64_t word = words[w]; word != 0; word &= word - 1) {
      out[written++] = static_cast<uint32_t>(
          word_base + static_cast<uint64_t>(__builtin_ctzll(word)));
    }
  }
  return written;
}

constexpr Kernels kAvx2Kernels = {
    AndInto, OrInto,   XorInto,        AndNotInto,
    OrNotMaskInto, Popcount, ExtractSetBits, Level::kAvx2,
};

}  // namespace

const Kernels& Avx2Kernels() { return kAvx2Kernels; }

}  // namespace internal
}  // namespace simd
}  // namespace incdb

#else  // !defined(__AVX2__)

namespace incdb {
namespace simd {
namespace internal {

// Built without the ISA (non-x86 target): degrade to the scalar table so
// the dispatcher links unconditionally. DetectedLevel() is scalar on such
// targets, so this accessor is only reached via explicit KernelsFor calls.
const Kernels& Avx2Kernels() { return ScalarKernels(); }

}  // namespace internal
}  // namespace simd
}  // namespace incdb

#endif  // defined(__AVX2__)
