// SSE4.2 kernel level: 128-bit logical ops plus the hardware POPCNT
// instruction. This translation unit alone is compiled with -msse4.2 (see
// src/simd/CMakeLists.txt); the dispatcher only hands its table out after
// a cpuid check, so nothing here executes on a CPU without the ISA. On
// targets built without the ISA the accessor degrades to the scalar table.

#include "simd/simd_isa.h"

#if defined(__SSE4_2__)

#include <emmintrin.h>
#include <nmmintrin.h>

#include <cstddef>
#include <cstdint>

namespace incdb {
namespace simd {
namespace internal {
namespace {

template <typename VecOp, typename WordOp>
void BinaryInto(void* dst, const void* src, size_t bytes, VecOp vec_op,
                WordOp word_op) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i));
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    const __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i + 16));
    const __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i), vec_op(a0, b0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i + 16), vec_op(a1, b1));
  }
  for (; i + 8 <= bytes; i += 8) {
    StoreWord(d + i, word_op(LoadWord(d + i), LoadWord(s + i)));
  }
  if (i < bytes) {
    const size_t tail = bytes - i;
    StorePartialWord(d + i,
                     word_op(LoadPartialWord(d + i, tail),
                             LoadPartialWord(s + i, tail)),
                     tail);
  }
}

// BinaryInto that also folds every stored block into an OR accumulator and
// returns it collapsed to 64 bits (the and_into/andnot_into all-zero
// probe) — one extra POR per block.
template <typename VecOp, typename WordOp>
uint64_t BinaryIntoAny(void* dst, const void* src, size_t bytes, VecOp vec_op,
                       WordOp word_op) {
  auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  __m128i vany = _mm_setzero_si128();
  uint64_t any = 0;
  size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m128i a0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i));
    const __m128i b0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
    const __m128i a1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(d + i + 16));
    const __m128i b1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i + 16));
    const __m128i r0 = vec_op(a0, b0);
    const __m128i r1 = vec_op(a1, b1);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i), r0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i + 16), r1);
    vany = _mm_or_si128(vany, _mm_or_si128(r0, r1));
  }
  for (; i + 8 <= bytes; i += 8) {
    const uint64_t r = word_op(LoadWord(d + i), LoadWord(s + i));
    StoreWord(d + i, r);
    any |= r;
  }
  if (i < bytes) {
    const size_t tail = bytes - i;
    const uint64_t r =
        word_op(LoadPartialWord(d + i, tail), LoadPartialWord(s + i, tail));
    StorePartialWord(d + i, r, tail);
    any |= r;
  }
  any |= static_cast<uint64_t>(_mm_cvtsi128_si64(vany));
  any |= static_cast<uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(vany, vany)));
  return any;
}

uint64_t AndInto(void* dst, const void* src, size_t bytes) {
  return BinaryIntoAny(
      dst, src, bytes,
      [](__m128i a, __m128i b) { return _mm_and_si128(a, b); },
      [](uint64_t a, uint64_t b) { return a & b; });
}

void OrInto(void* dst, const void* src, size_t bytes) {
  BinaryInto(
      dst, src, bytes,
      [](__m128i a, __m128i b) { return _mm_or_si128(a, b); },
      [](uint64_t a, uint64_t b) { return a | b; });
}

void XorInto(void* dst, const void* src, size_t bytes) {
  BinaryInto(
      dst, src, bytes,
      [](__m128i a, __m128i b) { return _mm_xor_si128(a, b); },
      [](uint64_t a, uint64_t b) { return a ^ b; });
}

uint64_t AndNotInto(void* dst, const void* src, size_t bytes) {
  return BinaryIntoAny(
      dst, src, bytes,
      // _mm_andnot_si128(b, a) computes ~b & a.
      [](__m128i a, __m128i b) { return _mm_andnot_si128(b, a); },
      [](uint64_t a, uint64_t b) { return a & ~b; });
}

void OrNotMaskInto(void* dst, const void* src, uint64_t mask, size_t bytes) {
  const __m128i vmask = _mm_set1_epi64x(static_cast<long long>(mask));
  BinaryInto(
      dst, src, bytes,
      [vmask](__m128i a, __m128i b) {
        return _mm_or_si128(a, _mm_andnot_si128(b, vmask));
      },
      [mask](uint64_t a, uint64_t b) { return a | (~b & mask); });
}

uint64_t Popcount(const void* src, size_t bytes) {
  const auto* s = static_cast<const unsigned char*>(src);
  uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    c0 += static_cast<uint64_t>(_mm_popcnt_u64(LoadWord(s + i)));
    c1 += static_cast<uint64_t>(_mm_popcnt_u64(LoadWord(s + i + 8)));
    c2 += static_cast<uint64_t>(_mm_popcnt_u64(LoadWord(s + i + 16)));
    c3 += static_cast<uint64_t>(_mm_popcnt_u64(LoadWord(s + i + 24)));
  }
  for (; i + 8 <= bytes; i += 8) {
    c0 += static_cast<uint64_t>(_mm_popcnt_u64(LoadWord(s + i)));
  }
  if (i < bytes) {
    c0 += static_cast<uint64_t>(
        _mm_popcnt_u64(LoadPartialWord(s + i, bytes - i)));
  }
  return c0 + c1 + c2 + c3;
}

size_t ExtractSetBits(const uint64_t* words, size_t n, uint64_t base,
                      uint32_t* out) {
  size_t written = 0;
  for (size_t w = 0; w < n; ++w) {
    const uint64_t word_base = base + 64 * static_cast<uint64_t>(w);
    for (uint64_t word = words[w]; word != 0; word &= word - 1) {
      const auto bit =
          static_cast<uint64_t>(__builtin_ctzll(word));
      out[written++] = static_cast<uint32_t>(word_base + bit);
    }
  }
  return written;
}

constexpr Kernels kSse2Kernels = {
    AndInto, OrInto,   XorInto,        AndNotInto,
    OrNotMaskInto, Popcount, ExtractSetBits, Level::kSse2,
};

}  // namespace

const Kernels& Sse2Kernels() { return kSse2Kernels; }

}  // namespace internal
}  // namespace simd
}  // namespace incdb

#else  // !defined(__SSE4_2__)

namespace incdb {
namespace simd {
namespace internal {

// Built without the ISA (non-x86 target): degrade to the scalar table so
// the dispatcher links unconditionally. DetectedLevel() is scalar on such
// targets, so this accessor is only reached via explicit KernelsFor calls.
const Kernels& Sse2Kernels() { return ScalarKernels(); }

}  // namespace internal
}  // namespace simd
}  // namespace incdb

#endif  // defined(__SSE4_2__)
