#include "query/seq_scan.h"

namespace incdb {

Result<std::vector<uint32_t>> SequentialScan::Execute(
    const RangeQuery& query) const {
  INCDB_RETURN_IF_ERROR(ValidateQuery(query, table_));
  std::vector<uint32_t> rows;
  for (uint64_t r = 0; r < table_.num_rows(); ++r) {
    if (RowMatches(table_, r, query)) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

Result<BitVector> SequentialScan::ExecuteToBitVector(
    const RangeQuery& query) const {
  INCDB_RETURN_IF_ERROR(ValidateQuery(query, table_));
  BitVector result(table_.num_rows());
  for (uint64_t r = 0; r < table_.num_rows(); ++r) {
    if (RowMatches(table_, r, query)) result.Set(r);
  }
  return result;
}

}  // namespace incdb
