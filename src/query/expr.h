#ifndef INCDB_QUERY_EXPR_H_
#define INCDB_QUERY_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

/// Three-valued (Kleene) truth value for predicates over incomplete data.
/// A term over a missing cell is kUnknown — it could be either way.
enum class Truth { kFalse, kUnknown, kTrue };

Truth TruthAnd(Truth a, Truth b);
Truth TruthOr(Truth a, Truth b);
Truth TruthNot(Truth a);
std::string_view TruthToString(Truth truth);

/// A boolean query expression over interval terms: AND / OR / NOT trees.
///
/// This generalizes the paper's conjunctive range queries and makes its two
/// query semantics principled for arbitrary boolean structure (the paper's
/// §4.2 discusses how NOT interacts with missing data):
///
///  * a term's truth on a row is kUnknown when the attribute is missing;
///  * AND/OR/NOT combine via Kleene logic;
///  * missing-is-match returns the *possible* answers (truth != kFalse);
///  * missing-not-match returns the *certain* answers (truth == kTrue).
///
/// For a pure conjunction of terms this reduces exactly to the paper's
/// RangeQuery semantics. Values are immutable and cheap to copy (shared
/// structure).
class QueryExpr {
 public:
  enum class Kind { kTerm, kAnd, kOr, kNot };

  /// Leaf: attribute `attribute` constrained to `interval`.
  static QueryExpr MakeTerm(size_t attribute, Interval interval);
  /// Conjunction / disjunction of one or more children.
  static QueryExpr MakeAnd(std::vector<QueryExpr> children);
  static QueryExpr MakeOr(std::vector<QueryExpr> children);
  /// Negation.
  static QueryExpr MakeNot(QueryExpr child);

  /// Lifts a conjunctive RangeQuery into an expression (semantics field of
  /// the query is ignored; semantics are chosen at evaluation time).
  static QueryExpr FromRangeQuery(const RangeQuery& query);

  Kind kind() const;
  /// Term accessors; only valid when kind() == kTerm.
  size_t attribute() const;
  Interval interval() const;
  /// Children; empty for terms, exactly one for kNot.
  const std::vector<QueryExpr>& children() const;

  /// Structural validation against a table: attributes in range, intervals
  /// inside domains, And/Or non-empty.
  Status Validate(const Table& table) const;

  /// Kleene evaluation of this expression on one row.
  Truth Evaluate(const Table& table, uint64_t row) const;

  /// e.g. "(A0 in [2,5] AND NOT A1 in [1,1])".
  std::string ToString() const;

 private:
  struct Node;
  explicit QueryExpr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

/// Row-level match predicate under the chosen semantics — the oracle
/// definition for boolean queries (possible vs certain answers).
bool ExprMatches(const Table& table, uint64_t row, const QueryExpr& expr,
                 MissingSemantics semantics);

}  // namespace incdb

#endif  // INCDB_QUERY_EXPR_H_
