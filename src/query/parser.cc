#include "query/parser.h"

#include <cctype>
#include <string_view>

namespace incdb {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kComma,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kIn,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  long number = 0;
  size_t position = 0;
};

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      Token token;
      token.position = pos_;
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t end = pos_;
        while (end < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[end]))) {
          ++end;
        }
        token.kind = TokenKind::kNumber;
        token.text = text_.substr(pos_, end - pos_);
        token.number = std::stol(token.text);
        pos_ = end;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t end = pos_;
        while (end < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '_')) {
          ++end;
        }
        token.text = text_.substr(pos_, end - pos_);
        pos_ = end;
        if (EqualsIgnoreCase(token.text, "AND")) {
          token.kind = TokenKind::kAnd;
        } else if (EqualsIgnoreCase(token.text, "OR")) {
          token.kind = TokenKind::kOr;
        } else if (EqualsIgnoreCase(token.text, "NOT")) {
          token.kind = TokenKind::kNot;
        } else if (EqualsIgnoreCase(token.text, "IN")) {
          token.kind = TokenKind::kIn;
        } else {
          token.kind = TokenKind::kIdent;
        }
      } else {
        switch (c) {
          case '(':
            token.kind = TokenKind::kLParen;
            ++pos_;
            break;
          case ')':
            token.kind = TokenKind::kRParen;
            ++pos_;
            break;
          case '[':
            token.kind = TokenKind::kLBracket;
            ++pos_;
            break;
          case ']':
            token.kind = TokenKind::kRBracket;
            ++pos_;
            break;
          case ',':
            token.kind = TokenKind::kComma;
            ++pos_;
            break;
          case '=':
            token.kind = TokenKind::kEq;
            ++pos_;
            break;
          case '!':
            if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
              token.kind = TokenKind::kNe;
              pos_ += 2;
              break;
            }
            return Error(pos_, "unexpected '!'");
          case '<':
            if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
              token.kind = TokenKind::kLe;
              pos_ += 2;
            } else {
              token.kind = TokenKind::kLt;
              ++pos_;
            }
            break;
          case '>':
            if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
              token.kind = TokenKind::kGe;
              pos_ += 2;
            } else {
              token.kind = TokenKind::kGt;
              ++pos_;
            }
            break;
          default:
            return Error(pos_, std::string("unexpected character '") + c +
                                   "'");
        }
      }
      tokens.push_back(std::move(token));
    }
    Token end;
    end.kind = TokenKind::kEnd;
    end.position = text_.size();
    tokens.push_back(end);
    return tokens;
  }

 private:
  Status Error(size_t position, const std::string& message) {
    return Status::InvalidArgument("query parse error at position " +
                                   std::to_string(position) + ": " + message);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const Table& table)
      : tokens_(std::move(tokens)), table_(table) {}

  Result<QueryExpr> Parse() {
    INCDB_ASSIGN_OR_RETURN(QueryExpr expr, ParseOr());
    if (Current().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return expr;
  }

 private:
  const Token& Current() const { return tokens_[index_]; }
  void Advance() { ++index_; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        "query parse error at position " +
        std::to_string(Current().position) + ": " + message);
  }

  Result<QueryExpr> ParseOr() {
    INCDB_ASSIGN_OR_RETURN(QueryExpr first, ParseAnd());
    std::vector<QueryExpr> children = {std::move(first)};
    while (Current().kind == TokenKind::kOr) {
      Advance();
      INCDB_ASSIGN_OR_RETURN(QueryExpr next, ParseAnd());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) return std::move(children.front());
    return QueryExpr::MakeOr(std::move(children));
  }

  Result<QueryExpr> ParseAnd() {
    INCDB_ASSIGN_OR_RETURN(QueryExpr first, ParseUnary());
    std::vector<QueryExpr> children = {std::move(first)};
    while (Current().kind == TokenKind::kAnd) {
      Advance();
      INCDB_ASSIGN_OR_RETURN(QueryExpr next, ParseUnary());
      children.push_back(std::move(next));
    }
    if (children.size() == 1) return std::move(children.front());
    return QueryExpr::MakeAnd(std::move(children));
  }

  Result<QueryExpr> ParseUnary() {
    if (Current().kind == TokenKind::kNot) {
      Advance();
      INCDB_ASSIGN_OR_RETURN(QueryExpr child, ParseUnary());
      return QueryExpr::MakeNot(std::move(child));
    }
    if (Current().kind == TokenKind::kLParen) {
      Advance();
      INCDB_ASSIGN_OR_RETURN(QueryExpr inner, ParseOr());
      if (Current().kind != TokenKind::kRParen) {
        return Error("expected ')'");
      }
      Advance();
      return inner;
    }
    return ParseTerm();
  }

  Result<long> ParseNumber() {
    if (Current().kind != TokenKind::kNumber) {
      return Error("expected a number");
    }
    const long value = Current().number;
    Advance();
    return value;
  }

  Result<QueryExpr> ParseTerm() {
    if (Current().kind != TokenKind::kIdent) {
      return Error("expected an attribute name");
    }
    const std::string name = Current().text;
    Advance();
    const auto attr = table_.schema().IndexOf(name);
    if (!attr.ok()) {
      return Error("unknown attribute '" + name + "'");
    }
    const Value cardinality = static_cast<Value>(
        table_.schema().attribute(attr.value()).cardinality);

    auto make_term = [&](Value lo, Value hi) -> Result<QueryExpr> {
      if (lo < 1 || hi > cardinality || lo > hi) {
        return Error("interval [" + std::to_string(lo) + "," +
                     std::to_string(hi) + "] outside domain [1," +
                     std::to_string(cardinality) + "] of '" + name + "'");
      }
      return QueryExpr::MakeTerm(attr.value(), {lo, hi});
    };

    const TokenKind op = Current().kind;
    switch (op) {
      case TokenKind::kEq:
      case TokenKind::kNe: {
        Advance();
        INCDB_ASSIGN_OR_RETURN(long v, ParseNumber());
        INCDB_ASSIGN_OR_RETURN(
            QueryExpr term,
            make_term(static_cast<Value>(v), static_cast<Value>(v)));
        if (op == TokenKind::kNe) return QueryExpr::MakeNot(std::move(term));
        return term;
      }
      case TokenKind::kLt:
      case TokenKind::kLe: {
        Advance();
        INCDB_ASSIGN_OR_RETURN(long v, ParseNumber());
        const Value hi =
            op == TokenKind::kLt ? static_cast<Value>(v - 1)
                                 : static_cast<Value>(v);
        return make_term(1, hi);
      }
      case TokenKind::kGt:
      case TokenKind::kGe: {
        Advance();
        INCDB_ASSIGN_OR_RETURN(long v, ParseNumber());
        const Value lo =
            op == TokenKind::kGt ? static_cast<Value>(v + 1)
                                 : static_cast<Value>(v);
        return make_term(lo, cardinality);
      }
      case TokenKind::kIn: {
        Advance();
        if (Current().kind != TokenKind::kLBracket) return Error("expected '['");
        Advance();
        INCDB_ASSIGN_OR_RETURN(long lo, ParseNumber());
        if (Current().kind != TokenKind::kComma) return Error("expected ','");
        Advance();
        INCDB_ASSIGN_OR_RETURN(long hi, ParseNumber());
        if (Current().kind != TokenKind::kRBracket) return Error("expected ']'");
        Advance();
        return make_term(static_cast<Value>(lo), static_cast<Value>(hi));
      }
      default:
        return Error("expected an operator (=, !=, <, <=, >, >=, IN) after '" +
                     name + "'");
    }
  }

  std::vector<Token> tokens_;
  const Table& table_;
  size_t index_ = 0;
};

}  // namespace

Result<QueryExpr> ParseQuery(const std::string& text, const Table& table) {
  Lexer lexer(text);
  INCDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens), table);
  return parser.Parse();
}

}  // namespace incdb
