#ifndef INCDB_QUERY_QUERY_H_
#define INCDB_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/table.h"

namespace incdb {

/// How a missing attribute value interacts with a query interval — the
/// paper's two query semantics (§3).
enum class MissingSemantics {
  /// A missing value counts as satisfying the interval ("could match"):
  /// a tuple answers the query iff every search-key attribute either falls
  /// in its interval or is missing. The paper's analyte/disease example.
  kMatch,
  /// A missing value disqualifies the tuple ("definitely matches"):
  /// a tuple answers iff every search-key attribute is present and falls in
  /// its interval. The paper's survey example.
  kNoMatch,
};

std::string_view MissingSemanticsToString(MissingSemantics semantics);

/// A closed interval v1 <= A_i <= v2 over one attribute's domain.
struct Interval {
  Value lo = 1;
  Value hi = 1;

  bool IsPoint() const { return lo == hi; }
  /// Number of domain values covered.
  uint32_t Width() const { return static_cast<uint32_t>(hi - lo + 1); }
  bool Contains(Value v) const { return v >= lo && v <= hi; }
};

/// One term of a search key: an interval over a specific attribute.
struct QueryTerm {
  size_t attribute = 0;
  Interval interval;
};

/// A k-dimensional range query (point query when every interval is a point).
struct RangeQuery {
  std::vector<QueryTerm> terms;
  MissingSemantics semantics = MissingSemantics::kMatch;

  size_t dimensionality() const { return terms.size(); }
  bool IsPointQuery() const;

  /// Debug rendering, e.g. "[match] 3 in [2,5] AND 7 in [1,1]".
  std::string ToString() const;
};

/// Validates a query against a table: attribute indexes in range, intervals
/// within [1, C_i], lo <= hi, no duplicate attributes.
Status ValidateQuery(const RangeQuery& query, const Table& table);

/// True iff `row` of `table` answers `query` under the query's semantics.
/// This predicate is the library-wide definition of correctness; every index
/// must agree with it exactly.
bool RowMatches(const Table& table, uint64_t row, const RangeQuery& query);

}  // namespace incdb

#endif  // INCDB_QUERY_QUERY_H_
