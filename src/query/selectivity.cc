#include "query/selectivity.h"

#include <algorithm>
#include <cmath>

namespace incdb {

double TermMatchProbability(double attribute_selectivity, double missing_rate,
                            MissingSemantics semantics) {
  if (semantics == MissingSemantics::kMatch) {
    return (1.0 - missing_rate) * attribute_selectivity + missing_rate;
  }
  return (1.0 - missing_rate) * attribute_selectivity;
}

double PredictGlobalSelectivity(double attribute_selectivity,
                                double missing_rate, size_t dims,
                                MissingSemantics semantics) {
  return std::pow(
      TermMatchProbability(attribute_selectivity, missing_rate, semantics),
      static_cast<double>(dims));
}

double SolveAttributeSelectivity(double global_selectivity,
                                 double missing_rate, size_t dims,
                                 MissingSemantics semantics) {
  const double per_term =
      std::pow(global_selectivity, 1.0 / static_cast<double>(dims));
  double as;
  if (semantics == MissingSemantics::kMatch) {
    if (missing_rate >= 1.0) return 0.0;
    as = (per_term - missing_rate) / (1.0 - missing_rate);
  } else {
    if (missing_rate >= 1.0) return 0.0;
    as = per_term / (1.0 - missing_rate);
  }
  return std::clamp(as, 0.0, 1.0);
}

}  // namespace incdb
