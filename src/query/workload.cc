#include "query/workload.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "query/selectivity.h"

namespace incdb {

Result<std::vector<RangeQuery>> GenerateWorkload(
    const Table& table, const WorkloadParams& params) {
  std::vector<size_t> pool = params.attribute_pool;
  if (pool.empty()) {
    pool.resize(table.num_attributes());
    for (size_t i = 0; i < pool.size(); ++i) pool[i] = i;
  }
  for (size_t attr : pool) {
    if (attr >= table.num_attributes()) {
      return Status::OutOfRange("attribute pool entry " +
                                std::to_string(attr) + " out of range");
    }
  }
  if (params.dims == 0 || params.dims > pool.size()) {
    return Status::InvalidArgument(
        "dims must be in [1, pool size = " + std::to_string(pool.size()) +
        "], got " + std::to_string(params.dims));
  }
  if (!params.point_queries && params.attribute_selectivity <= 0.0 &&
      (params.global_selectivity <= 0.0 || params.global_selectivity > 1.0)) {
    return Status::InvalidArgument("global_selectivity must be in (0, 1]");
  }

  Rng rng(params.seed);
  std::vector<RangeQuery> queries;
  queries.reserve(params.num_queries);
  for (size_t q = 0; q < params.num_queries; ++q) {
    RangeQuery query;
    query.semantics = params.semantics;
    // Choose k distinct attributes from the pool (partial Fisher-Yates).
    std::vector<size_t> chosen = pool;
    for (size_t i = 0; i < params.dims; ++i) {
      const size_t j = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(i),
                         static_cast<int64_t>(chosen.size()) - 1));
      std::swap(chosen[i], chosen[j]);
    }
    chosen.resize(params.dims);

    for (size_t attr : chosen) {
      const uint32_t cardinality = table.schema().attribute(attr).cardinality;
      uint32_t width = 1;
      if (!params.point_queries) {
        double as = params.attribute_selectivity;
        if (as <= 0.0) {
          const double pm = table.column(attr).MissingRate();
          as = SolveAttributeSelectivity(params.global_selectivity, pm,
                                         params.dims, params.semantics);
        }
        // Granularity of attribute selectivity is limited by C_i (paper
        // §5.3): round to the nearest realizable interval width, >= 1.
        width = static_cast<uint32_t>(
            std::lround(as * static_cast<double>(cardinality)));
        width = std::clamp<uint32_t>(width, 1, cardinality);
      }
      const Value lo = static_cast<Value>(
          rng.UniformInt(1, static_cast<int64_t>(cardinality - width + 1)));
      query.terms.push_back(
          {attr, Interval{lo, static_cast<Value>(lo + static_cast<Value>(width) - 1)}});
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace incdb
