#include "query/expr.h"

#include "common/logging.h"

namespace incdb {

Truth TruthAnd(Truth a, Truth b) {
  if (a == Truth::kFalse || b == Truth::kFalse) return Truth::kFalse;
  if (a == Truth::kUnknown || b == Truth::kUnknown) return Truth::kUnknown;
  return Truth::kTrue;
}

Truth TruthOr(Truth a, Truth b) {
  if (a == Truth::kTrue || b == Truth::kTrue) return Truth::kTrue;
  if (a == Truth::kUnknown || b == Truth::kUnknown) return Truth::kUnknown;
  return Truth::kFalse;
}

Truth TruthNot(Truth a) {
  switch (a) {
    case Truth::kFalse:
      return Truth::kTrue;
    case Truth::kUnknown:
      return Truth::kUnknown;
    case Truth::kTrue:
      return Truth::kFalse;
  }
  return Truth::kUnknown;
}

std::string_view TruthToString(Truth truth) {
  switch (truth) {
    case Truth::kFalse:
      return "false";
    case Truth::kUnknown:
      return "unknown";
    case Truth::kTrue:
      return "true";
  }
  return "?";
}

struct QueryExpr::Node {
  Kind kind = Kind::kTerm;
  size_t attribute = 0;
  Interval interval;
  std::vector<QueryExpr> children;
};

QueryExpr QueryExpr::MakeTerm(size_t attribute, Interval interval) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kTerm;
  node->attribute = attribute;
  node->interval = interval;
  return QueryExpr(std::move(node));
}

QueryExpr QueryExpr::MakeAnd(std::vector<QueryExpr> children) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kAnd;
  node->children = std::move(children);
  return QueryExpr(std::move(node));
}

QueryExpr QueryExpr::MakeOr(std::vector<QueryExpr> children) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kOr;
  node->children = std::move(children);
  return QueryExpr(std::move(node));
}

QueryExpr QueryExpr::MakeNot(QueryExpr child) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::kNot;
  node->children.push_back(std::move(child));
  return QueryExpr(std::move(node));
}

QueryExpr QueryExpr::FromRangeQuery(const RangeQuery& query) {
  std::vector<QueryExpr> terms;
  terms.reserve(query.terms.size());
  for (const QueryTerm& term : query.terms) {
    terms.push_back(MakeTerm(term.attribute, term.interval));
  }
  return MakeAnd(std::move(terms));
}

QueryExpr::Kind QueryExpr::kind() const { return node_->kind; }

size_t QueryExpr::attribute() const {
  INCDB_DCHECK(node_->kind == Kind::kTerm);
  return node_->attribute;
}

Interval QueryExpr::interval() const {
  INCDB_DCHECK(node_->kind == Kind::kTerm);
  return node_->interval;
}

const std::vector<QueryExpr>& QueryExpr::children() const {
  return node_->children;
}

Status QueryExpr::Validate(const Table& table) const {
  switch (node_->kind) {
    case Kind::kTerm: {
      if (node_->attribute >= table.num_attributes()) {
        return Status::OutOfRange("attribute index " +
                                  std::to_string(node_->attribute) +
                                  " out of range");
      }
      const uint32_t cardinality =
          table.schema().attribute(node_->attribute).cardinality;
      if (node_->interval.lo < 1 ||
          node_->interval.hi > static_cast<Value>(cardinality) ||
          node_->interval.lo > node_->interval.hi) {
        return Status::InvalidArgument(
            "interval [" + std::to_string(node_->interval.lo) + "," +
            std::to_string(node_->interval.hi) + "] invalid for cardinality " +
            std::to_string(cardinality));
      }
      return Status::OK();
    }
    case Kind::kAnd:
    case Kind::kOr:
      if (node_->children.empty()) {
        return Status::InvalidArgument("AND/OR must have children");
      }
      for (const QueryExpr& child : node_->children) {
        INCDB_RETURN_IF_ERROR(child.Validate(table));
      }
      return Status::OK();
    case Kind::kNot:
      INCDB_DCHECK(node_->children.size() == 1);
      return node_->children.front().Validate(table);
  }
  return Status::Internal("unknown expression kind");
}

Truth QueryExpr::Evaluate(const Table& table, uint64_t row) const {
  switch (node_->kind) {
    case Kind::kTerm: {
      const Value v = table.Get(row, node_->attribute);
      if (IsMissing(v)) return Truth::kUnknown;
      return node_->interval.Contains(v) ? Truth::kTrue : Truth::kFalse;
    }
    case Kind::kAnd: {
      Truth acc = Truth::kTrue;
      for (const QueryExpr& child : node_->children) {
        acc = TruthAnd(acc, child.Evaluate(table, row));
        if (acc == Truth::kFalse) break;  // short-circuit
      }
      return acc;
    }
    case Kind::kOr: {
      Truth acc = Truth::kFalse;
      for (const QueryExpr& child : node_->children) {
        acc = TruthOr(acc, child.Evaluate(table, row));
        if (acc == Truth::kTrue) break;
      }
      return acc;
    }
    case Kind::kNot:
      return TruthNot(node_->children.front().Evaluate(table, row));
  }
  return Truth::kUnknown;
}

std::string QueryExpr::ToString() const {
  switch (node_->kind) {
    case Kind::kTerm: {
      std::string out = "A";
      out += std::to_string(node_->attribute);
      out += " in [";
      out += std::to_string(node_->interval.lo);
      out += ",";
      out += std::to_string(node_->interval.hi);
      out += "]";
      return out;
    }
    case Kind::kAnd:
    case Kind::kOr: {
      const char* joiner = node_->kind == Kind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < node_->children.size(); ++i) {
        if (i > 0) out += joiner;
        out += node_->children[i].ToString();
      }
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "NOT " + node_->children.front().ToString();
  }
  return "?";
}

bool ExprMatches(const Table& table, uint64_t row, const QueryExpr& expr,
                 MissingSemantics semantics) {
  const Truth truth = expr.Evaluate(table, row);
  if (semantics == MissingSemantics::kMatch) {
    return truth != Truth::kFalse;  // possible answer
  }
  return truth == Truth::kTrue;  // certain answer
}

}  // namespace incdb
