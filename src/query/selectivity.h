#ifndef INCDB_QUERY_SELECTIVITY_H_
#define INCDB_QUERY_SELECTIVITY_H_

#include <cstddef>

#include "query/query.h"

namespace incdb {

/// Selectivity model from the paper (§5.3):
///
///   GS = prod_i ((1 - Pm_i) * AS_i + Pm_i)            (missing is a match)
///
/// where GS is global query selectivity, AS_i = (v2 - v1 + 1) / C_i is the
/// attribute selectivity and Pm_i the attribute's missing rate. Under
/// missing-not-match semantics a missing cell never matches, so the per-term
/// probability is (1 - Pm_i) * AS_i.

/// Probability that one query term matches a random record.
double TermMatchProbability(double attribute_selectivity, double missing_rate,
                            MissingSemantics semantics);

/// Predicted GS for k equal terms: TermMatchProbability(...)^k.
double PredictGlobalSelectivity(double attribute_selectivity,
                                double missing_rate, size_t dims,
                                MissingSemantics semantics);

/// Inverts the model: the equal attribute selectivity that yields a target
/// GS with k query dimensions at missing rate Pm. Clamped to [0, 1]; may be
/// 0 when Pm alone already exceeds GS^(1/k) under match semantics (the
/// workload generator then degrades to point intervals, exactly as the
/// paper notes its realized GS drifts from the 1% target).
double SolveAttributeSelectivity(double global_selectivity,
                                 double missing_rate, size_t dims,
                                 MissingSemantics semantics);

}  // namespace incdb

#endif  // INCDB_QUERY_SELECTIVITY_H_
