#ifndef INCDB_QUERY_WORKLOAD_H_
#define INCDB_QUERY_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

/// Recipe for a random query workload over a table. Mirrors the paper's
/// experimental setup: 100 queries per configuration, k-dimensional search
/// keys, global selectivity fixed (1% in the paper) and per-attribute
/// selectivity derived by inverting the GS formula.
struct WorkloadParams {
  size_t num_queries = 100;
  /// Query dimensionality k (number of search-key attributes).
  size_t dims = 8;
  /// Target global selectivity; per-attribute interval widths are derived
  /// from it via SolveAttributeSelectivity (ignored when
  /// attribute_selectivity > 0).
  double global_selectivity = 0.01;
  /// When > 0, use this attribute selectivity directly for every term
  /// (e.g. the paper's 20%-of-domain range queries on the census data).
  double attribute_selectivity = 0.0;
  /// When true, all intervals are points (attribute_selectivity and
  /// global_selectivity are ignored).
  bool point_queries = false;
  MissingSemantics semantics = MissingSemantics::kMatch;
  uint64_t seed = 7;
  /// Attributes eligible for search keys; empty means all attributes.
  std::vector<size_t> attribute_pool;
};

/// Generates `params.num_queries` random range queries over `table`.
/// Deterministic in the seed. Fails when dims exceeds the pool size or any
/// parameter is out of range.
Result<std::vector<RangeQuery>> GenerateWorkload(const Table& table,
                                                 const WorkloadParams& params);

}  // namespace incdb

#endif  // INCDB_QUERY_WORKLOAD_H_
