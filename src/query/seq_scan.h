#ifndef INCDB_QUERY_SEQ_SCAN_H_
#define INCDB_QUERY_SEQ_SCAN_H_

#include <cstdint>
#include <vector>

#include "bitvector/bitvector.h"
#include "common/status.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

/// Sequential-scan query evaluation: visits every row and applies
/// RowMatches. This is both the no-index baseline the paper compares
/// against and the exactness oracle every index implementation is verified
/// against in the test suite.
class SequentialScan {
 public:
  explicit SequentialScan(const Table& table) : table_(table) {}

  /// Row ids (ascending) of all rows answering `query`.
  Result<std::vector<uint32_t>> Execute(const RangeQuery& query) const;

  /// Same result as a bitvector (bit x set iff row x answers).
  Result<BitVector> ExecuteToBitVector(const RangeQuery& query) const;

 private:
  const Table& table_;
};

}  // namespace incdb

#endif  // INCDB_QUERY_SEQ_SCAN_H_
