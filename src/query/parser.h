#ifndef INCDB_QUERY_PARSER_H_
#define INCDB_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/expr.h"
#include "table/table.h"

namespace incdb {

/// Parses a boolean predicate over named attributes into a QueryExpr.
///
/// Grammar (keywords case-insensitive; attribute names resolved against
/// the table's schema and intervals validated against cardinalities):
///
///   expr    := and ( "OR" and )*
///   and     := unary ( "AND" unary )*
///   unary   := "NOT" unary | "(" expr ")" | term
///   term    := IDENT op
///   op      := "=" INT | "!=" INT
///            | "<" INT | "<=" INT | ">" INT | ">=" INT
///            | "IN" "[" INT "," INT "]"
///
/// Examples:
///   "rating >= 4 AND price IN [1,7]"
///   "NOT (q1 = 4) OR q7 != 2"
///
/// `!=` desugars to NOT(= v), which under Kleene semantics keeps missing
/// cells unknown — exactly the behaviour §4.2's NOT discussion requires.
Result<QueryExpr> ParseQuery(const std::string& text, const Table& table);

}  // namespace incdb

#endif  // INCDB_QUERY_PARSER_H_
