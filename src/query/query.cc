#include "query/query.h"

#include <unordered_set>

namespace incdb {

std::string_view MissingSemanticsToString(MissingSemantics semantics) {
  switch (semantics) {
    case MissingSemantics::kMatch:
      return "match";
    case MissingSemantics::kNoMatch:
      return "no-match";
  }
  return "unknown";
}

bool RangeQuery::IsPointQuery() const {
  for (const QueryTerm& term : terms) {
    if (!term.interval.IsPoint()) return false;
  }
  return true;
}

std::string RangeQuery::ToString() const {
  std::string out = "[";
  out += MissingSemanticsToString(semantics);
  out += "]";
  for (size_t i = 0; i < terms.size(); ++i) {
    out += (i == 0) ? " " : " AND ";
    out += "A";
    out += std::to_string(terms[i].attribute);
    out += " in [";
    out += std::to_string(terms[i].interval.lo);
    out += ",";
    out += std::to_string(terms[i].interval.hi);
    out += "]";
  }
  return out;
}

Status ValidateQuery(const RangeQuery& query, const Table& table) {
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must have at least one term");
  }
  std::unordered_set<size_t> seen;
  for (const QueryTerm& term : query.terms) {
    if (term.attribute >= table.num_attributes()) {
      return Status::OutOfRange("attribute index " +
                                std::to_string(term.attribute) +
                                " out of range");
    }
    if (!seen.insert(term.attribute).second) {
      return Status::InvalidArgument("duplicate attribute " +
                                     std::to_string(term.attribute) +
                                     " in search key");
    }
    const uint32_t cardinality =
        table.schema().attribute(term.attribute).cardinality;
    if (term.interval.lo < 1 || term.interval.hi > static_cast<Value>(cardinality) ||
        term.interval.lo > term.interval.hi) {
      return Status::InvalidArgument(
          "interval [" + std::to_string(term.interval.lo) + "," +
          std::to_string(term.interval.hi) + "] invalid for cardinality " +
          std::to_string(cardinality));
    }
  }
  return Status::OK();
}

bool RowMatches(const Table& table, uint64_t row, const RangeQuery& query) {
  for (const QueryTerm& term : query.terms) {
    const Value v = table.Get(row, term.attribute);
    if (IsMissing(v)) {
      if (query.semantics == MissingSemantics::kNoMatch) return false;
      continue;  // missing counts as a match for this term
    }
    if (!term.interval.Contains(v)) return false;
  }
  return true;
}

}  // namespace incdb
