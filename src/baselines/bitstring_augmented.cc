#include "baselines/bitstring_augmented.h"

#include <cmath>

#include "common/bitutil.h"

namespace incdb {

Result<BitstringAugmentedIndex> BitstringAugmentedIndex::Build(
    const Table& table, int max_node_entries) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument(
        "cannot build a bitstring-augmented index on an empty table");
  }
  const size_t d = table.num_attributes();
  std::vector<int32_t> means(d);
  for (size_t a = 0; a < d; ++a) {
    means[a] = static_cast<int32_t>(
        std::lround(table.column(a).NonMissingMean()));
  }

  const size_t words_per_record = bitutil::CeilDiv(d, 64);
  std::vector<uint64_t> bitstrings(table.num_rows() * words_per_record, 0);
  RTree rtree(d, max_node_entries);
  std::vector<int32_t> point(d);
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < d; ++a) {
      const Value v = table.Get(r, a);
      if (IsMissing(v)) {
        point[a] = means[a];
        bitstrings[r * words_per_record + a / 64] |= uint64_t{1} << (a % 64);
      } else {
        point[a] = v;
      }
    }
    rtree.Insert(point, static_cast<uint32_t>(r));
  }
  return BitstringAugmentedIndex(table.num_rows(), d, std::move(rtree),
                                 std::move(means), std::move(bitstrings),
                                 words_per_record);
}

Result<BitVector> BitstringAugmentedIndex::Execute(const RangeQuery& query,
                                                   QueryStats* stats) const {
  const size_t k = query.terms.size();
  if (k == 0) {
    return Status::InvalidArgument("query must have at least one term");
  }
  if (k > 20) {
    return Status::NotSupported(
        "bitstring-augmented query expansion is 2^k subqueries; k > 20 "
        "refused (this exponential blow-up is the baseline's weakness)");
  }
  for (const QueryTerm& term : query.terms) {
    if (term.attribute >= num_attrs_) {
      return Status::OutOfRange("attribute index " +
                                std::to_string(term.attribute) +
                                " out of range");
    }
  }

  // The full-domain box; subqueries tighten the search-key dimensions.
  Rect base_box;
  base_box.lo.assign(num_attrs_, 0);
  base_box.hi.resize(num_attrs_);
  for (size_t a = 0; a < num_attrs_; ++a) {
    // Domain upper bounds are not stored here; means_ <= C and values <= C
    // were inserted, so INT32_MAX is a safe (and cheap) upper bound.
    base_box.hi[a] = std::numeric_limits<int32_t>::max();
  }

  BitVector result(num_rows_);
  std::vector<uint32_t> candidates;

  // Under no-match semantics only the S = empty-set subquery applies.
  const uint64_t num_subsets =
      query.semantics == MissingSemantics::kMatch ? (uint64_t{1} << k) : 1;
  for (uint64_t subset = 0; subset < num_subsets; ++subset) {
    Rect box = base_box;
    for (size_t i = 0; i < k; ++i) {
      const QueryTerm& term = query.terms[i];
      if ((subset >> i) & 1) {
        // Treated as missing: constrained to the mean point the missing
        // cells were mapped to.
        box.lo[term.attribute] = means_[term.attribute];
        box.hi[term.attribute] = means_[term.attribute];
      } else {
        box.lo[term.attribute] = term.interval.lo;
        box.hi[term.attribute] = term.interval.hi;
      }
    }
    candidates.clear();
    const uint64_t nodes = rtree_.RangeSearch(box, &candidates);
    if (stats != nullptr) {
      ++stats->subqueries;
      stats->nodes_accessed += nodes;
      stats->candidates += candidates.size();
    }
    // Bitstring filter: the record's missingness over the search key must
    // be exactly S (this also de-duplicates across subqueries).
    for (uint32_t r : candidates) {
      bool accept = true;
      for (size_t i = 0; i < k; ++i) {
        const bool wanted_missing = ((subset >> i) & 1) != 0;
        if (IsMissingBit(r, query.terms[i].attribute) != wanted_missing) {
          accept = false;
          break;
        }
      }
      if (accept) {
        result.Set(r);
      } else if (stats != nullptr) {
        ++stats->false_positives;
      }
    }
  }
  return result;
}

Status BitstringAugmentedIndex::AppendRow(const std::vector<Value>& row) {
  if (row.size() != num_attrs_) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, index has " +
        std::to_string(num_attrs_) + " attributes");
  }
  std::vector<int32_t> point(num_attrs_);
  std::vector<uint64_t> bits(words_per_record_, 0);
  for (size_t a = 0; a < num_attrs_; ++a) {
    if (IsMissing(row[a])) {
      point[a] = means_[a];
      bits[a / 64] |= uint64_t{1} << (a % 64);
    } else {
      point[a] = row[a];
    }
  }
  rtree_.Insert(point, static_cast<uint32_t>(num_rows_));
  bitstrings_.insert(bitstrings_.end(), bits.begin(), bits.end());
  ++num_rows_;
  return Status::OK();
}

uint64_t BitstringAugmentedIndex::SizeInBytes() const {
  return rtree_.SizeInBytes() + bitstrings_.size() * sizeof(uint64_t) +
         means_.size() * sizeof(int32_t);
}

}  // namespace incdb
