#ifndef INCDB_BASELINES_MOSAIC_H_
#define INCDB_BASELINES_MOSAIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "btree/bplus_tree.h"
#include "common/io.h"
#include "core/incomplete_index.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

/// MOSAIC baseline (Ooi, Goh, Tan — VLDB'98, the paper's reference [12]):
/// Multiple One-dimensional one-attribute indexes — a B+-tree per attribute
/// with missing values mapped to a distinguished key (0, outside every
/// domain).
///
/// A k-attribute query becomes 2k one-dimensional subqueries (a value-range
/// scan plus a missing-key lookup per attribute under match semantics), and
/// the per-attribute row sets must then be intersected — the set-operation
/// overhead the paper's techniques avoid. QueryStats reports the subquery
/// count and total B+-tree node accesses.
class MosaicIndex : public IncompleteIndex {
 public:
  static Result<MosaicIndex> Build(const Table& table, int fanout = 64);

  std::string Name() const override { return "MOSAIC"; }
  Result<BitVector> Execute(const RangeQuery& query,
                            QueryStats* stats = nullptr) const override;
  uint64_t SizeInBytes() const override;

  /// Inserts the row into every per-attribute B+-tree.
  Status AppendRow(const std::vector<Value>& row) override;

  /// Serializes the index into `writer` as per-tree sorted (key, record)
  /// entry lists (the storage engine's catalog path; trees are rebuilt by
  /// bulk insertion on load).
  Status SaveTo(BinaryWriter& writer) const;

  /// Loads an index written by SaveTo. `num_attributes` must match the base
  /// table's attribute count (shape check; entries are validated against
  /// the stored row count).
  static Result<MosaicIndex> LoadFrom(BinaryReader& reader,
                                      size_t num_attributes);

  uint64_t num_rows() const { return num_rows_; }

 private:
  MosaicIndex(uint64_t num_rows, std::vector<BPlusTree> trees)
      : num_rows_(num_rows), trees_(std::move(trees)) {}

  /// The distinguished B+-tree key for missing cells.
  static constexpr int32_t kMissingKey = 0;

  uint64_t num_rows_;
  std::vector<BPlusTree> trees_;  // one per attribute
};

}  // namespace incdb

#endif  // INCDB_BASELINES_MOSAIC_H_
