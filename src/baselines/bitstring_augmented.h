#ifndef INCDB_BASELINES_BITSTRING_AUGMENTED_H_
#define INCDB_BASELINES_BITSTRING_AUGMENTED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/incomplete_index.h"
#include "query/query.h"
#include "rtree/rtree.h"
#include "table/table.h"

namespace incdb {

/// Bitstring-augmented baseline (Ooi, Goh, Tan — VLDB'98, reference [12]):
/// a multi-dimensional index (here an R-tree) over the complete-ified data,
/// where each missing cell is mapped to the attribute's non-missing mean
/// (to avoid skewing the index), and each record carries a bitstring
/// marking which attributes are missing.
///
/// Under missing-is-match semantics a k-attribute query must be expanded
/// into 2^k subqueries — one per subset S of search-key attributes treated
/// as missing: attributes in S are constrained to the mean point, the rest
/// to their query ranges, and results are filtered by the bitstring
/// (missing exactly on S among the search-key attributes). This exponential
/// blow-up is precisely the weakness the paper's techniques remove.
/// QueryStats reports the subquery count and R-tree node accesses.
class BitstringAugmentedIndex : public IncompleteIndex {
 public:
  /// Builds over all attributes of `table`. Intended for the low-dimensional
  /// settings where an R-tree is viable; query dimensionality is capped at
  /// 20 (2^20 subqueries) to keep the exponential baseline runnable.
  static Result<BitstringAugmentedIndex> Build(const Table& table,
                                               int max_node_entries = 16);

  std::string Name() const override { return "Bitstring-Augmented"; }
  Result<BitVector> Execute(const RangeQuery& query,
                            QueryStats* stats = nullptr) const override;
  uint64_t SizeInBytes() const override;

  /// Inserts the row into the R-tree; missing coordinates map to the means
  /// frozen at Build time (so earlier records stay consistent).
  Status AppendRow(const std::vector<Value>& row) override;

 private:
  BitstringAugmentedIndex(uint64_t num_rows, size_t num_attrs, RTree rtree,
                          std::vector<int32_t> means,
                          std::vector<uint64_t> bitstrings,
                          size_t words_per_record)
      : num_rows_(num_rows),
        num_attrs_(num_attrs),
        rtree_(std::move(rtree)),
        means_(std::move(means)),
        bitstrings_(std::move(bitstrings)),
        words_per_record_(words_per_record) {}

  bool IsMissingBit(uint64_t row, size_t attr) const {
    return (bitstrings_[row * words_per_record_ + attr / 64] >>
            (attr % 64)) &
           1;
  }

  uint64_t num_rows_;
  size_t num_attrs_;
  RTree rtree_;
  /// Per-attribute rounded mean of the non-missing values — the coordinate
  /// missing cells were mapped to.
  std::vector<int32_t> means_;
  /// Packed per-record missingness bitstrings.
  std::vector<uint64_t> bitstrings_;
  size_t words_per_record_;
};

}  // namespace incdb

#endif  // INCDB_BASELINES_BITSTRING_AUGMENTED_H_
