#include "baselines/mosaic.h"

namespace incdb {

Result<MosaicIndex> MosaicIndex::Build(const Table& table, int fanout) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot build MOSAIC on an empty table");
  }
  std::vector<BPlusTree> trees;
  trees.reserve(table.num_attributes());
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    BPlusTree tree(fanout);
    const Column& column = table.column(a);
    for (uint64_t r = 0; r < table.num_rows(); ++r) {
      const Value v = column.Get(r);
      tree.Insert(IsMissing(v) ? kMissingKey : v, static_cast<uint32_t>(r));
    }
    trees.push_back(std::move(tree));
  }
  return MosaicIndex(table.num_rows(), std::move(trees));
}

Result<BitVector> MosaicIndex::Execute(const RangeQuery& query,
                                       QueryStats* stats) const {
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must have at least one term");
  }
  BitVector result;
  bool first = true;
  std::vector<uint32_t> rows;
  for (const QueryTerm& term : query.terms) {
    if (term.attribute >= trees_.size()) {
      return Status::OutOfRange("attribute index " +
                                std::to_string(term.attribute) +
                                " out of range");
    }
    const BPlusTree& tree = trees_[term.attribute];
    rows.clear();
    // Subquery 1: the value range.
    uint64_t nodes = tree.RangeScan(term.interval.lo, term.interval.hi, &rows);
    uint64_t subqueries = 1;
    // Subquery 2: the distinguished missing key (match semantics only).
    if (query.semantics == MissingSemantics::kMatch) {
      nodes += tree.Lookup(kMissingKey, &rows);
      ++subqueries;
    }
    if (stats != nullptr) {
      stats->nodes_accessed += nodes;
      stats->subqueries += subqueries;
    }
    // Set operation: intersect this attribute's row set into the result.
    BitVector attr_rows(num_rows_);
    for (uint32_t r : rows) attr_rows.Set(r);
    if (first) {
      result = std::move(attr_rows);
      first = false;
    } else {
      result.AndWith(attr_rows);
    }
  }
  return result;
}

Status MosaicIndex::AppendRow(const std::vector<Value>& row) {
  if (row.size() != trees_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, index has " +
        std::to_string(trees_.size()) + " attributes");
  }
  const uint32_t record = static_cast<uint32_t>(num_rows_);
  for (size_t a = 0; a < row.size(); ++a) {
    const Value v = row[a];
    trees_[a].Insert(IsMissing(v) ? kMissingKey : v, record);
  }
  ++num_rows_;
  return Status::OK();
}

Status MosaicIndex::SaveTo(BinaryWriter& writer) const {
  writer.WriteU64(num_rows_);
  writer.WriteU64(trees_.size());
  std::vector<int32_t> keys;
  std::vector<uint32_t> records;
  for (const BPlusTree& tree : trees_) {
    keys.clear();
    records.clear();
    keys.reserve(tree.size());
    records.reserve(tree.size());
    tree.ForEachEntry([&](int32_t key, uint32_t record) {
      keys.push_back(key);
      records.push_back(record);
    });
    writer.WriteU32(static_cast<uint32_t>(tree.fanout()));
    writer.WriteI32Vector(keys);
    writer.WriteU32Vector(records);
  }
  return writer.status();
}

Result<MosaicIndex> MosaicIndex::LoadFrom(BinaryReader& reader,
                                          size_t num_attributes) {
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_trees, reader.ReadU64());
  if (num_trees != num_attributes) {
    return Status::IOError("MOSAIC payload has " + std::to_string(num_trees) +
                           " trees, base table has " +
                           std::to_string(num_attributes) + " attributes");
  }
  std::vector<BPlusTree> trees;
  trees.reserve(num_trees);
  for (uint64_t t = 0; t < num_trees; ++t) {
    INCDB_ASSIGN_OR_RETURN(uint32_t fanout, reader.ReadU32());
    if (fanout < 4 || fanout > (1u << 20)) {
      return Status::IOError("MOSAIC payload: implausible fanout " +
                             std::to_string(fanout));
    }
    INCDB_ASSIGN_OR_RETURN(std::vector<int32_t> keys, reader.ReadI32Vector());
    INCDB_ASSIGN_OR_RETURN(std::vector<uint32_t> records,
                           reader.ReadU32Vector());
    if (keys.size() != records.size() || keys.size() != num_rows) {
      return Status::IOError("MOSAIC payload: tree " + std::to_string(t) +
                             " entry count mismatch");
    }
    BPlusTree tree(static_cast<int>(fanout));
    for (size_t i = 0; i < keys.size(); ++i) {
      if (records[i] >= num_rows) {
        return Status::IOError("MOSAIC payload: record id out of range");
      }
      tree.Insert(keys[i], records[i]);
    }
    trees.push_back(std::move(tree));
  }
  return MosaicIndex(num_rows, std::move(trees));
}

uint64_t MosaicIndex::SizeInBytes() const {
  uint64_t total = 0;
  for (const BPlusTree& tree : trees_) total += tree.SizeInBytes();
  return total;
}

}  // namespace incdb
