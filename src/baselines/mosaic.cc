#include "baselines/mosaic.h"

namespace incdb {

Result<MosaicIndex> MosaicIndex::Build(const Table& table, int fanout) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot build MOSAIC on an empty table");
  }
  std::vector<BPlusTree> trees;
  trees.reserve(table.num_attributes());
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    BPlusTree tree(fanout);
    const Column& column = table.column(a);
    for (uint64_t r = 0; r < table.num_rows(); ++r) {
      const Value v = column.Get(r);
      tree.Insert(IsMissing(v) ? kMissingKey : v, static_cast<uint32_t>(r));
    }
    trees.push_back(std::move(tree));
  }
  return MosaicIndex(table.num_rows(), std::move(trees));
}

Result<BitVector> MosaicIndex::Execute(const RangeQuery& query,
                                       QueryStats* stats) const {
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must have at least one term");
  }
  BitVector result;
  bool first = true;
  std::vector<uint32_t> rows;
  for (const QueryTerm& term : query.terms) {
    if (term.attribute >= trees_.size()) {
      return Status::OutOfRange("attribute index " +
                                std::to_string(term.attribute) +
                                " out of range");
    }
    const BPlusTree& tree = trees_[term.attribute];
    rows.clear();
    // Subquery 1: the value range.
    uint64_t nodes = tree.RangeScan(term.interval.lo, term.interval.hi, &rows);
    uint64_t subqueries = 1;
    // Subquery 2: the distinguished missing key (match semantics only).
    if (query.semantics == MissingSemantics::kMatch) {
      nodes += tree.Lookup(kMissingKey, &rows);
      ++subqueries;
    }
    if (stats != nullptr) {
      stats->nodes_accessed += nodes;
      stats->subqueries += subqueries;
    }
    // Set operation: intersect this attribute's row set into the result.
    BitVector attr_rows(num_rows_);
    for (uint32_t r : rows) attr_rows.Set(r);
    if (first) {
      result = std::move(attr_rows);
      first = false;
    } else {
      result.AndWith(attr_rows);
    }
  }
  return result;
}

Status MosaicIndex::AppendRow(const std::vector<Value>& row) {
  if (row.size() != trees_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, index has " +
        std::to_string(trees_.size()) + " attributes");
  }
  const uint32_t record = static_cast<uint32_t>(num_rows_);
  for (size_t a = 0; a < row.size(); ++a) {
    const Value v = row[a];
    trees_[a].Insert(IsMissing(v) ? kMissingKey : v, record);
  }
  ++num_rows_;
  return Status::OK();
}

uint64_t MosaicIndex::SizeInBytes() const {
  uint64_t total = 0;
  for (const BPlusTree& tree : trees_) total += tree.SizeInBytes();
  return total;
}

}  // namespace incdb
