#include "vafile/va_file.h"

#include <algorithm>
#include <fstream>

#include "common/bitutil.h"
#include "common/io.h"
#include "common/logging.h"

namespace incdb {

namespace {

// Uniform (equal-width) code assignment: value v in [1, C] maps to code
// 1 + floor((v-1) * nbins / C). When nbins >= C every value gets a distinct
// code and the approximation is exact.
std::vector<uint32_t> UniformCodes(uint32_t cardinality, uint32_t num_bins) {
  std::vector<uint32_t> codes(cardinality);
  for (uint32_t v = 1; v <= cardinality; ++v) {
    codes[v - 1] =
        1 + static_cast<uint32_t>((static_cast<uint64_t>(v - 1) * num_bins) /
                                  cardinality);
  }
  return codes;
}

// Equi-depth code assignment (VA+-style): contiguous value ranges with
// approximately equal record counts per bin, computed from the column
// histogram. Guarantees every value gets a code and codes are
// non-decreasing in v.
std::vector<uint32_t> EquiDepthCodes(const Column& column,
                                     uint32_t num_bins) {
  const uint32_t cardinality = column.cardinality();
  const std::vector<uint64_t> hist = column.Histogram();
  uint64_t non_missing = 0;
  for (uint32_t v = 1; v <= cardinality; ++v) non_missing += hist[v];

  std::vector<uint32_t> codes(cardinality);
  const uint32_t bins = std::min(num_bins, cardinality);
  uint32_t bin = 1;
  uint64_t in_bin = 0;
  uint32_t values_left = cardinality;
  for (uint32_t v = 1; v <= cardinality; ++v, --values_left) {
    codes[v - 1] = bin;
    in_bin += hist[v];
    const uint32_t bins_left = bins - bin;
    // Close the bin when it reached its share, but never leave more values
    // than bins behind (every remaining bin must be usable) and never make
    // more bins than values.
    const double target = static_cast<double>(non_missing) /
                          static_cast<double>(bins);
    if (bin < bins && v < cardinality &&
        (static_cast<double>(in_bin) >= target ||
         values_left - 1 <= bins_left)) {
      ++bin;
      in_bin = 0;
    }
  }
  return codes;
}

}  // namespace

Result<VaFile> VaFile::Build(const Table& table) {
  return Build(table, Options());
}

Result<VaFile> VaFile::Build(const Table& table, Options options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot build a VA-file on an empty table");
  }
  if (options.bits_override < 0 || options.bits_override > 30) {
    return Status::InvalidArgument("bits_override must be in [0, 30]");
  }

  std::vector<AttributeQuantizer> attributes;
  attributes.reserve(table.num_attributes());
  uint32_t stride = 0;
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    const Column& column = table.column(a);
    AttributeQuantizer quantizer;
    quantizer.cardinality = column.cardinality();
    // Paper default: b_i = ceil(lg(C_i + 1)); the +1 reserves code 0 for
    // missing. At least 1 bit so the missing code exists.
    int bits = options.bits_override > 0
                   ? options.bits_override
                   : bitutil::BitsForCardinality(quantizer.cardinality);
    bits = std::max(bits, 1);
    quantizer.bits = bits;
    quantizer.num_bins = (uint32_t{1} << bits) - 1;
    quantizer.bit_offset = stride;
    stride += static_cast<uint32_t>(bits);

    quantizer.code_of_value =
        options.quantization == VaQuantization::kEquiDepth
            ? EquiDepthCodes(column, quantizer.num_bins)
            : UniformCodes(quantizer.cardinality, quantizer.num_bins);

    // Derive per-code value ranges (empty codes get lo > hi).
    quantizer.bin_lo.assign(quantizer.num_bins, 1);
    quantizer.bin_hi.assign(quantizer.num_bins, 0);
    for (uint32_t v = 1; v <= quantizer.cardinality; ++v) {
      const uint32_t code = quantizer.code_of_value[v - 1];
      INCDB_CHECK(code >= 1 && code <= quantizer.num_bins);
      Value& lo = quantizer.bin_lo[code - 1];
      Value& hi = quantizer.bin_hi[code - 1];
      if (hi < lo) {
        lo = static_cast<Value>(v);
        hi = static_cast<Value>(v);
      } else {
        hi = static_cast<Value>(v);
      }
    }
    attributes.push_back(std::move(quantizer));
  }

  // Pack the approximations row-major.
  const uint64_t total_bits =
      static_cast<uint64_t>(stride) * table.num_rows();
  std::vector<uint64_t> packed(bitutil::CeilDiv(total_bits, 64), 0);
  auto put_bits = [&packed](uint64_t bit_pos, int width, uint64_t value) {
    const uint64_t word = bit_pos / 64;
    const int offset = static_cast<int>(bit_pos % 64);
    packed[word] |= value << offset;
    if (offset + width > 64) {
      packed[word + 1] |= value >> (64 - offset);
    }
  };
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    const uint64_t row_base = r * stride;
    for (size_t a = 0; a < attributes.size(); ++a) {
      const AttributeQuantizer& quantizer = attributes[a];
      const Value v = table.Get(r, a);
      const uint64_t code =
          IsMissing(v) ? 0 : quantizer.code_of_value[static_cast<size_t>(v) - 1];
      put_bits(row_base + quantizer.bit_offset, quantizer.bits, code);
    }
  }
  return VaFile(&table, options, std::move(attributes), stride,
                table.num_rows(), std::move(packed));
}

std::string VaFile::Name() const {
  std::string name = options_.quantization == VaQuantization::kEquiDepth
                         ? "VA+-File"
                         : "VA-File";
  if (options_.bits_override > 0) {
    name += "(b=" + std::to_string(options_.bits_override) + ")";
  }
  return name;
}

void VaFile::Detach() {
  if (borrowed_packed_ == nullptr) return;
  packed_.assign(borrowed_packed_, borrowed_packed_ + num_borrowed_);
  borrowed_packed_ = nullptr;
  num_borrowed_ = 0;
}

void VaFile::PutBits(uint64_t bit_pos, int width, uint64_t value) {
  Detach();
  const uint64_t needed_words = bitutil::CeilDiv(bit_pos + width, 64);
  if (packed_.size() < needed_words) packed_.resize(needed_words, 0);
  const uint64_t word = bit_pos / 64;
  const int offset = static_cast<int>(bit_pos % 64);
  packed_[word] |= value << offset;
  if (offset + width > 64) {
    packed_[word + 1] |= value >> (64 - offset);
  }
}

Status VaFile::AppendRow(const std::vector<Value>& row) {
  if (row.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, VA-file has " +
        std::to_string(attributes_.size()) + " attributes");
  }
  for (size_t a = 0; a < row.size(); ++a) {
    const Value v = row[a];
    if (v != kMissingValue &&
        (v < 1 || static_cast<uint32_t>(v) > attributes_[a].cardinality)) {
      return Status::OutOfRange("attribute " + std::to_string(a) +
                                ": value " + std::to_string(v) +
                                " outside domain");
    }
  }
  const uint64_t row_base = num_rows_ * row_stride_bits_;
  for (size_t a = 0; a < row.size(); ++a) {
    const AttributeQuantizer& quantizer = attributes_[a];
    const uint64_t code =
        IsMissing(row[a])
            ? 0
            : quantizer.code_of_value[static_cast<size_t>(row[a]) - 1];
    PutBits(row_base + quantizer.bit_offset, quantizer.bits, code);
  }
  ++num_rows_;
  return Status::OK();
}

namespace {
constexpr char kVaMagic[] = "INCDBVA1";
}  // namespace

Status VaFile::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  BinaryWriter writer(out);
  writer.WriteString(kVaMagic);
  writer.WriteU8(static_cast<uint8_t>(options_.quantization));
  writer.WriteU32(static_cast<uint32_t>(options_.bits_override));
  writer.WriteU64(num_rows_);
  writer.WriteU32(row_stride_bits_);
  writer.WriteU64(attributes_.size());
  for (const AttributeQuantizer& quantizer : attributes_) {
    writer.WriteU32(static_cast<uint32_t>(quantizer.bits));
    writer.WriteU32(quantizer.num_bins);
    writer.WriteU32(quantizer.cardinality);
    writer.WriteU32(quantizer.bit_offset);
    writer.WriteU32Vector(quantizer.code_of_value);
    writer.WriteU64(quantizer.bin_lo.size());
    for (size_t i = 0; i < quantizer.bin_lo.size(); ++i) {
      writer.WriteI32(quantizer.bin_lo[i]);
      writer.WriteI32(quantizer.bin_hi[i]);
    }
  }
  const std::span<const uint64_t> packed = packed_view();
  writer.WriteU64(packed.size());
  for (uint64_t word : packed) writer.WriteU64(word);
  return writer.status();
}

Result<VaFile> VaFile::Load(const std::string& path, const Table& table) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  BinaryReader reader(in);
  INCDB_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(64));
  if (magic != kVaMagic) {
    return Status::IOError("'" + path + "' is not an incdb VA-file");
  }
  Options options;
  INCDB_ASSIGN_OR_RETURN(uint8_t quantization, reader.ReadU8());
  if (quantization > static_cast<uint8_t>(VaQuantization::kEquiDepth)) {
    return Status::IOError("'" + path + "': corrupted quantization tag");
  }
  options.quantization = static_cast<VaQuantization>(quantization);
  INCDB_ASSIGN_OR_RETURN(uint32_t bits_override, reader.ReadU32());
  options.bits_override = static_cast<int>(bits_override);
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint32_t stride, reader.ReadU32());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, reader.ReadU64());
  if (num_attrs != table.num_attributes()) {
    return Status::InvalidArgument(
        "'" + path + "' has " + std::to_string(num_attrs) +
        " attributes, base table has " +
        std::to_string(table.num_attributes()));
  }
  if (num_rows > table.num_rows()) {
    return Status::InvalidArgument("'" + path +
                                   "' covers more rows than the base table");
  }
  std::vector<AttributeQuantizer> attributes;
  attributes.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    AttributeQuantizer quantizer;
    INCDB_ASSIGN_OR_RETURN(uint32_t bits, reader.ReadU32());
    quantizer.bits = static_cast<int>(bits);
    INCDB_ASSIGN_OR_RETURN(quantizer.num_bins, reader.ReadU32());
    INCDB_ASSIGN_OR_RETURN(quantizer.cardinality, reader.ReadU32());
    INCDB_ASSIGN_OR_RETURN(quantizer.bit_offset, reader.ReadU32());
    INCDB_ASSIGN_OR_RETURN(quantizer.code_of_value, reader.ReadU32Vector());
    if (quantizer.cardinality != table.schema().attribute(a).cardinality) {
      return Status::InvalidArgument(
          "'" + path + "': attribute " + std::to_string(a) +
          " cardinality mismatch with base table");
    }
    if (quantizer.bits < 1 || quantizer.bits > 30 ||
        quantizer.num_bins != (uint32_t{1} << quantizer.bits) - 1 ||
        quantizer.code_of_value.size() != quantizer.cardinality) {
      return Status::IOError("'" + path + "': corrupted quantizer");
    }
    INCDB_ASSIGN_OR_RETURN(uint64_t num_bins, reader.ReadU64());
    if (num_bins != quantizer.num_bins) {
      return Status::IOError("'" + path + "': corrupted bin table");
    }
    quantizer.bin_lo.resize(num_bins);
    quantizer.bin_hi.resize(num_bins);
    for (uint64_t i = 0; i < num_bins; ++i) {
      INCDB_ASSIGN_OR_RETURN(quantizer.bin_lo[i], reader.ReadI32());
      INCDB_ASSIGN_OR_RETURN(quantizer.bin_hi[i], reader.ReadI32());
    }
    attributes.push_back(std::move(quantizer));
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t num_words, reader.ReadU64());
  if (num_words !=
      bitutil::CeilDiv(num_rows * static_cast<uint64_t>(stride), 64)) {
    return Status::IOError("'" + path + "': packed payload size mismatch");
  }
  std::vector<uint64_t> packed(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    INCDB_ASSIGN_OR_RETURN(packed[i], reader.ReadU64());
  }
  return VaFile(&table, options, std::move(attributes), stride, num_rows,
                std::move(packed));
}

Result<VaFile> VaFile::FromParts(const Table* table, Options options,
                                 std::vector<AttributeQuantizer> attributes,
                                 uint32_t row_stride_bits, uint64_t num_rows,
                                 std::span<const uint64_t> packed) {
  if (table == nullptr) {
    return Status::InvalidArgument("VaFile::FromParts: null base table");
  }
  if (attributes.size() != table->num_attributes()) {
    return Status::InvalidArgument(
        "VA-file parts have " + std::to_string(attributes.size()) +
        " attributes, base table has " +
        std::to_string(table->num_attributes()));
  }
  if (num_rows > table->num_rows()) {
    return Status::InvalidArgument(
        "VA-file parts cover more rows than the base table");
  }
  uint32_t stride = 0;
  for (size_t a = 0; a < attributes.size(); ++a) {
    const AttributeQuantizer& quantizer = attributes[a];
    if (quantizer.cardinality != table->schema().attribute(a).cardinality) {
      return Status::InvalidArgument("VA-file parts: attribute " +
                                     std::to_string(a) +
                                     " cardinality mismatch with base table");
    }
    if (quantizer.bits < 1 || quantizer.bits > 30 ||
        quantizer.num_bins != (uint32_t{1} << quantizer.bits) - 1 ||
        quantizer.code_of_value.size() != quantizer.cardinality ||
        quantizer.bin_lo.size() != quantizer.num_bins ||
        quantizer.bin_hi.size() != quantizer.num_bins ||
        quantizer.bit_offset != stride) {
      return Status::IOError("VA-file parts: corrupted quantizer for attribute " +
                             std::to_string(a));
    }
    stride += static_cast<uint32_t>(quantizer.bits);
  }
  if (stride != row_stride_bits) {
    return Status::IOError("VA-file parts: row stride mismatch");
  }
  if (packed.size() !=
      bitutil::CeilDiv(num_rows * static_cast<uint64_t>(row_stride_bits), 64)) {
    return Status::IOError("VA-file parts: packed payload size mismatch");
  }
  VaFile file(table, options, std::move(attributes), row_stride_bits, num_rows,
              /*packed=*/{});
  file.borrowed_packed_ = packed.data();
  file.num_borrowed_ = packed.size();
  return file;
}

uint64_t VaFile::ExtractBits(uint64_t bit_pos, int width) const {
  const uint64_t word = bit_pos / 64;
  const int offset = static_cast<int>(bit_pos % 64);
  const uint64_t* packed = packed_data();
  uint64_t value = packed[word] >> offset;
  if (offset + width > 64) {
    value |= packed[word + 1] << (64 - offset);
  }
  return value & bitutil::LowBitsMask(width);
}

uint32_t VaFile::CodeOf(size_t attr, Value value) const {
  if (IsMissing(value)) return 0;
  return attributes_[attr].code_of_value[static_cast<size_t>(value) - 1];
}

Interval VaFile::BinRange(size_t attr, uint32_t code) const {
  const AttributeQuantizer& quantizer = attributes_[attr];
  INCDB_CHECK(code >= 1 && code <= quantizer.num_bins);
  return Interval{quantizer.bin_lo[code - 1], quantizer.bin_hi[code - 1]};
}

uint32_t VaFile::StoredCode(uint64_t row, size_t attr) const {
  const AttributeQuantizer& quantizer = attributes_[attr];
  return static_cast<uint32_t>(ExtractBits(
      row * row_stride_bits_ + quantizer.bit_offset, quantizer.bits));
}

Result<BitVector> VaFile::Execute(const RangeQuery& query,
                                  QueryStats* stats) const {
  INCDB_RETURN_IF_ERROR(ValidateQuery(query, *table_));

  // Per-term translated bounds (paper §4.5): query [v1, v2] becomes codes
  // [VA(v1), VA(v2)], plus code 0 when missing means match. Boundary codes
  // whose value range is not fully inside the interval require refinement.
  struct TermPlan {
    uint32_t bit_offset;
    int bits;
    uint32_t code_lo;
    uint32_t code_hi;
    bool include_missing;
    bool refine_lo;
    bool refine_hi;
  };
  std::vector<TermPlan> plans;
  plans.reserve(query.terms.size());
  for (const QueryTerm& term : query.terms) {
    const AttributeQuantizer& quantizer = attributes_[term.attribute];
    TermPlan plan;
    plan.bit_offset = quantizer.bit_offset;
    plan.bits = quantizer.bits;
    plan.code_lo = quantizer.code_of_value[static_cast<size_t>(term.interval.lo) - 1];
    plan.code_hi = quantizer.code_of_value[static_cast<size_t>(term.interval.hi) - 1];
    plan.include_missing = query.semantics == MissingSemantics::kMatch;
    plan.refine_lo = quantizer.bin_lo[plan.code_lo - 1] < term.interval.lo;
    plan.refine_hi = quantizer.bin_hi[plan.code_hi - 1] > term.interval.hi;
    plans.push_back(plan);
  }

  if (num_rows_ > table_->num_rows()) {
    return Status::Internal(
        "VA-file covers more rows than the base table; append rows to the "
        "table before the index");
  }
  BitVector result(num_rows_);
  for (uint64_t r = 0; r < num_rows_; ++r) {
    const uint64_t row_base = r * row_stride_bits_;
    bool candidate = true;
    bool needs_refinement = false;
    for (const TermPlan& plan : plans) {
      const uint32_t code = static_cast<uint32_t>(
          ExtractBits(row_base + plan.bit_offset, plan.bits));
      if (code == 0) {
        if (!plan.include_missing) {
          candidate = false;
          break;
        }
        continue;  // missing counts as a match for this term
      }
      if (code < plan.code_lo || code > plan.code_hi) {
        candidate = false;
        break;
      }
      if ((code == plan.code_lo && plan.refine_lo) ||
          (code == plan.code_hi && plan.refine_hi)) {
        needs_refinement = true;
      }
    }
    if (!candidate) continue;
    if (stats != nullptr) ++stats->candidates;
    if (needs_refinement && !RowMatches(*table_, r, query)) {
      if (stats != nullptr) ++stats->false_positives;
      continue;
    }
    result.Set(r);
  }
  return result;
}

uint64_t VaFile::SizeInBytes() const {
  const uint64_t approximation_bytes = bitutil::CeilDiv(
      static_cast<uint64_t>(row_stride_bits_) * num_rows_, 8);
  uint64_t lookup_bytes = 0;
  for (const AttributeQuantizer& quantizer : attributes_) {
    // The lookup table stores the value range per bin.
    lookup_bytes += 2 * sizeof(Value) * quantizer.num_bins;
  }
  return approximation_bytes + lookup_bytes;
}

}  // namespace incdb
