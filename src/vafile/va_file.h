#ifndef INCDB_VAFILE_VA_FILE_H_
#define INCDB_VAFILE_VA_FILE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/incomplete_index.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

/// Bin-boundary policy for the VA-file quantizer.
enum class VaQuantization {
  /// Equal-width bins over the attribute domain (the paper's VA-file).
  kUniform,
  /// Equi-depth bins from the data distribution — the paper's future-work
  /// pointer to the VA+-file [6], which quantizes skewed data better.
  kEquiDepth,
};

/// Vector-approximation file over an incomplete table (paper §4.5).
///
/// Each attribute A_i is approximated with b_i bits; the all-zeros code is
/// reserved for missing values, and codes 1..2^b_i - 1 are bins over the
/// domain 1..C_i. With the paper's default bit allocation
/// b_i = ceil(lg(C_i + 1)) every value receives its own bin, so the filter
/// step is exact; with a caller-supplied smaller budget (bits_override) the
/// filter is approximate and boundary-bin candidates are refined against the
/// base table, exactly like the paper's "read actual database pages" step.
///
/// The VA-file keeps a pointer to the table it was built from (needed for
/// refinement); the table must outlive the index.
class VaFile : public IncompleteIndex {
 public:
  struct Options {
    VaQuantization quantization = VaQuantization::kUniform;
    /// When > 0, use this many bits per attribute (clamped per attribute so
    /// at least one non-missing bin exists). 0 = the paper's default
    /// allocation ceil(lg(C_i + 1)).
    int bits_override = 0;
  };

  /// Per-attribute quantization tables (public so the storage engine can
  /// serialize and reassemble a VA-file without rebuilding it).
  struct AttributeQuantizer {
    int bits = 0;
    uint32_t num_bins = 0;      // non-missing bins: 2^bits - 1
    uint32_t cardinality = 0;
    uint32_t bit_offset = 0;    // offset of this attribute within a row
    /// code_of_value[v - 1] = bin code of value v (1-based codes).
    std::vector<uint32_t> code_of_value;
    /// bin_lo[k - 1] / bin_hi[k - 1] = value range of bin code k.
    std::vector<Value> bin_lo;
    std::vector<Value> bin_hi;
  };

  /// Builds the approximation file. Fails on an empty table.
  static Result<VaFile> Build(const Table& table, Options options);
  /// Builds with default options (paper defaults: uniform bins,
  /// b_i = ceil(lg(C_i + 1))).
  static Result<VaFile> Build(const Table& table);

  /// Reassembles a VA-file from parts the storage engine deserialized. The
  /// packed approximation array is *borrowed* (zero-copy over an mmap'd
  /// segment); the caller guarantees it outlives the index. Appending
  /// detaches into owned storage first. Validates shapes, not contents.
  static Result<VaFile> FromParts(const Table* table, Options options,
                                  std::vector<AttributeQuantizer> attributes,
                                  uint32_t row_stride_bits, uint64_t num_rows,
                                  std::span<const uint64_t> packed);

  std::string Name() const override;
  Result<BitVector> Execute(const RangeQuery& query,
                            QueryStats* stats = nullptr) const override;
  uint64_t SizeInBytes() const override;

  /// Appends one record's approximation (incremental maintenance). Append
  /// the row to the base table first; the approximation uses the bins
  /// fixed at Build time (equi-depth bins are not re-balanced). The result
  /// is bit-identical to a rebuilt uniform VA-file over the extended data.
  Status AppendRow(const std::vector<Value>& row) override;

  /// Rows covered by the approximation file (tracks AppendRow).
  uint64_t num_rows() const { return num_rows_; }

  /// Persists the approximation file and lookup tables to disk.
  Status Save(const std::string& path) const;

  /// Loads a VA-file written by Save. `table` is the base table used for
  /// the refinement step; its shape must match (attribute count,
  /// cardinalities, at least num_rows rows). The table must outlive the
  /// returned index.
  static Result<VaFile> Load(const std::string& path, const Table& table);

  /// Bits allocated to attribute `attr` (b_i).
  int BitsFor(size_t attr) const { return attributes_[attr].bits; }

  /// Approximation code of `value` for attribute `attr`; 0 for missing.
  /// This is the paper's VA(x) function.
  uint32_t CodeOf(size_t attr, Value value) const;

  /// Value range [lo, hi] covered by non-missing bin `code` (1-based).
  Interval BinRange(size_t attr, uint32_t code) const;

  /// Stored approximation code for a record (reads the packed file).
  uint32_t StoredCode(uint64_t row, size_t attr) const;

  /// Bits per packed record (sum of b_i).
  uint32_t RowStrideBits() const { return row_stride_bits_; }

  /// Storage-engine accessors.
  const Options& options() const { return options_; }
  const std::vector<AttributeQuantizer>& attributes() const {
    return attributes_;
  }
  /// The bit-packed approximation array (borrowed or owned).
  std::span<const uint64_t> packed_view() const {
    return borrowed_packed_ != nullptr
               ? std::span<const uint64_t>(borrowed_packed_, num_borrowed_)
               : std::span<const uint64_t>(packed_);
  }
  /// True while the packed array is a non-owning view (see FromParts).
  bool borrowed() const { return borrowed_packed_ != nullptr; }

 private:
  VaFile(const Table* table, Options options,
         std::vector<AttributeQuantizer> attributes, uint32_t row_stride_bits,
         uint64_t num_rows, std::vector<uint64_t> packed)
      : table_(table),
        options_(options),
        attributes_(std::move(attributes)),
        row_stride_bits_(row_stride_bits),
        num_rows_(num_rows),
        packed_(std::move(packed)) {}

  uint64_t ExtractBits(uint64_t bit_pos, int width) const;
  void PutBits(uint64_t bit_pos, int width, uint64_t value);
  /// Copies a borrowed packed array into owned storage before mutation.
  void Detach();

  const uint64_t* packed_data() const {
    return borrowed_packed_ != nullptr ? borrowed_packed_ : packed_.data();
  }

  const Table* table_;
  Options options_;
  std::vector<AttributeQuantizer> attributes_;
  uint32_t row_stride_bits_ = 0;
  uint64_t num_rows_ = 0;
  /// Row-major bit-packed approximations.
  std::vector<uint64_t> packed_;
  /// Non-owning packed array (mmap zero-copy mode); see FromParts().
  const uint64_t* borrowed_packed_ = nullptr;
  size_t num_borrowed_ = 0;
};

}  // namespace incdb

#endif  // INCDB_VAFILE_VA_FILE_H_
