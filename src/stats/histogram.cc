#include "stats/histogram.h"

#include <algorithm>

namespace incdb {

AttributeHistogram AttributeHistogram::FromColumn(const Column& column) {
  return AttributeHistogram(column.cardinality(), column.num_rows(),
                            column.Histogram());
}

double AttributeHistogram::MissingRate() const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[0]) / static_cast<double>(total_);
}

double AttributeHistogram::EstimateTermSelectivity(
    Interval interval, MissingSemantics semantics) const {
  if (total_ == 0) return 0.0;
  uint64_t matching = 0;
  const Value lo = std::max<Value>(interval.lo, 1);
  const Value hi = std::min<Value>(interval.hi, static_cast<Value>(cardinality_));
  for (Value v = lo; v <= hi; ++v) matching += count(v);
  if (semantics == MissingSemantics::kMatch) matching += counts_[0];
  return static_cast<double>(matching) / static_cast<double>(total_);
}

double AttributeHistogram::Skew() const {
  const uint64_t non_missing = total_ - counts_[0];
  if (non_missing == 0 || cardinality_ == 0) return 1.0;
  uint64_t max_count = 0;
  for (uint32_t v = 1; v <= cardinality_; ++v) {
    max_count = std::max(max_count, counts_[v]);
  }
  const double mean =
      static_cast<double>(non_missing) / static_cast<double>(cardinality_);
  if (mean == 0.0) return 1.0;
  return static_cast<double>(max_count) / mean;
}

double AttributeHistogram::BitDensity(Value v) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(v)) / static_cast<double>(total_);
}

}  // namespace incdb
