#ifndef INCDB_STATS_HISTOGRAM_H_
#define INCDB_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "query/query.h"
#include "table/column.h"

namespace incdb {

/// Exact per-attribute value histogram (cardinalities in incdb are small
/// enough to keep full counts), including the missing bucket. The basis of
/// selectivity estimation and the index advisor's cost model.
class AttributeHistogram {
 public:
  /// Builds from a column in one pass.
  static AttributeHistogram FromColumn(const Column& column);

  uint32_t cardinality() const { return cardinality_; }
  uint64_t total_rows() const { return total_; }
  uint64_t missing_count() const { return counts_[0]; }
  /// Rows holding exactly `v` (v in [1, cardinality]).
  uint64_t count(Value v) const { return counts_[static_cast<size_t>(v)]; }

  /// Fraction of missing cells — the paper's P_m.
  double MissingRate() const;

  /// Exact fraction of rows a single-term interval matches under the given
  /// semantics (computed from counts, not the uniformity assumption).
  double EstimateTermSelectivity(Interval interval,
                                 MissingSemantics semantics) const;

  /// Skew measure: frequency of the most common non-missing value divided
  /// by the mean non-missing frequency (1.0 = uniform). Drives the WAH
  /// compressibility estimates for real-data-like columns.
  double Skew() const;

  /// Fraction of set bits in the equality bitmap of value `v` — its "bit
  /// density" in the paper's compression analysis.
  double BitDensity(Value v) const;

 private:
  AttributeHistogram(uint32_t cardinality, uint64_t total,
                     std::vector<uint64_t> counts)
      : cardinality_(cardinality), total_(total), counts_(std::move(counts)) {}

  uint32_t cardinality_;
  uint64_t total_;
  std::vector<uint64_t> counts_;  // index 0 = missing
};

}  // namespace incdb

#endif  // INCDB_STATS_HISTOGRAM_H_
