#include "stats/wah_model.h"

#include <algorithm>
#include <cmath>

namespace incdb {

double ExpectedWahWords(uint64_t bits, double density) {
  if (bits == 0) return 0.0;
  const double d = std::clamp(density, 0.0, 1.0);
  const double groups = std::ceil(static_cast<double>(bits) / 31.0);
  const double p0 = std::pow(1.0 - d, 31.0);
  const double p1 = std::pow(d, 31.0);
  const double literal = std::max(0.0, 1.0 - p0 - p1);
  const double words =
      groups * (literal + p0 * (1.0 - p0) + p1 * (1.0 - p1));
  return std::max(1.0, words);
}

double ExpectedWahBytes(uint64_t bits, double density) {
  if (bits == 0) return 0.0;
  return 4.0 * ExpectedWahWords(bits, density);
}

}  // namespace incdb
