#ifndef INCDB_STATS_WAH_MODEL_H_
#define INCDB_STATS_WAH_MODEL_H_

#include <cstdint>

namespace incdb {

/// Analytic model of WAH(32) compression for an n-bit bitmap whose bits are
/// (approximately) independent with density d.
///
/// With 31-bit groups: a group is an all-zero fill candidate with
/// probability p0 = (1-d)^31, all-ones with p1 = d^31, literal otherwise.
/// Expected code words = literal groups plus one word per maximal run of
/// same-type fill groups:
///
///   E[words] ≈ G * (pl + p0*(1-p0) + p1*(1-p1)),  G = ceil(n/31)
///
/// This is the model behind the index advisor's size and cost estimates;
/// it matches measured sizes within ~20% for independent bits and degrades
/// gracefully (over-estimating) for clustered bitmaps.
double ExpectedWahWords(uint64_t bits, double density);

/// E[words] * 4 bytes, at least 4 for any non-empty bitmap.
double ExpectedWahBytes(uint64_t bits, double density);

}  // namespace incdb

#endif  // INCDB_STATS_WAH_MODEL_H_
