#ifndef INCDB_BITMAP_ENCODER_H_
#define INCDB_BITMAP_ENCODER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"
#include "compression/wah_bitvector.h"
#include "core/incomplete_index.h"
#include "query/query.h"

namespace incdb {

/// Bitmap record encoding (paper §4.2 / §4.3, plus the interval encoding
/// from the paper's related work [5]) — the *encoding* axis of the bitmap
/// layer's binning x encoding architecture (docs/ENCODINGS.md). An encoder
/// turns one slicer axis's slot stream into WAH bitvectors (AxisEncoder)
/// and lowers a slot interval over those bitvectors to compressed logical
/// operations (EvaluateSlotInterval). The engine is written once against
/// the slicer's slot domain; every index kind — the paper's four direct
/// ones and the multi-component / hierarchical composites — rides it.
enum class BitmapEncoding {
  /// BEE: B_{i,j}[x] = 1 iff record x has value j for attribute i.
  kEquality,
  /// BRE: B_{i,j}[x] = 1 iff record x has value <= j; the all-ones top
  /// bitmap B_{i,C} is dropped. Missing is treated as value 0 (smaller than
  /// the whole domain), so missing rows are 1 in every kept bitmap.
  kRange,
  /// BIE (Chan & Ioannidis' interval encoding, the paper's reference [5],
  /// extended here with the same B_{i,0} missing bitvector as BEE):
  /// I_{i,j}[x] = 1 iff value(x) in [j, j+m-1] with m = ceil(C/2); only
  /// n = C-m+1 bitmaps are stored (about half of BEE) and any interval is
  /// answered with at most two of them. Missing rows are 0 in every I_j.
  kInterval,
  /// BSL (bit-sliced / binary encoding, after O'Neil & Quass — the paper's
  /// reference [10] — extended to missing data): record x's value is
  /// binary-encoded into b = ceil(lg(C+1)) slice bitmaps S_0..S_{b-1};
  /// the all-zeros code is reserved for missing (mirroring the VA-file's
  /// trick). The smallest bitmap index (log C bitmaps) at the cost of
  /// O(log C) logical operations per query dimension, evaluated with the
  /// classic bit-sliced less-than-or-equal circuit.
  kBitSliced,
};

/// How missing cells are represented in an equality-encoded index.
enum class MissingStrategy {
  /// The paper's design: a dedicated bitvector B_{i,0} marks missing rows.
  kExtraBitmap,
  /// §4.2 rejected alternative (kept for the ablation bench): missing rows
  /// are 1 in *every* value bitmap. Only answers missing-is-match queries;
  /// ambiguous when C_i == 1; ruins run compression. Equality only.
  kAllOnes,
  /// §4.2 rejected alternative: missing rows are 0 in every value bitmap.
  /// Only answers missing-not-match queries and disables the complement
  /// optimization for wide ranges. Equality only.
  kAllZeros,
};

std::string_view BitmapEncodingToString(BitmapEncoding encoding);

/// Interval-encoding geometry: bitmap I_j covers values [j, j+m-1] with
/// m = ceil(C/2); n = C-m+1 bitmaps are stored.
uint32_t IntervalEncodingM(uint32_t cardinality);
uint32_t IntervalEncodingN(uint32_t cardinality);

/// Incremental builder for one WAH bitvector: appends set bits at ascending
/// row positions, run-length-filling the gaps, so build cost is proportional
/// to the number of set bits rather than the number of rows.
class SetBitBuilder {
 public:
  void SetBitAt(uint64_t row) {
    INCDB_DCHECK(row >= appended_);
    bits_.AppendRun(false, row - appended_);
    bits_.AppendBit(true);
    appended_ = row + 1;
  }

  WahBitVector Finish(uint64_t num_rows) {
    bits_.AppendRun(false, num_rows - appended_);
    appended_ = num_rows;
    return std::move(bits_);
  }

 private:
  WahBitVector bits_;
  uint64_t appended_ = 0;
};

/// Adapts the fused WAH kernels' per-operation accounting (WahOpStats) into
/// the query counters: dense SIMD windows and decoded group words fold into
/// QueryStats at scope exit. get() is null when no stats were requested, so
/// the kernels skip the bookkeeping entirely.
class WahStatsScope {
 public:
  explicit WahStatsScope(QueryStats* stats) : stats_(stats) {}
  ~WahStatsScope() {
    if (stats_ != nullptr) {
      stats_->simd_path += op_stats_.dense_windows;
      stats_->words_decoded += op_stats_.words_decoded;
    }
  }
  WahStatsScope(const WahStatsScope&) = delete;
  WahStatsScope& operator=(const WahStatsScope&) = delete;

  WahOpStats* get() { return stats_ != nullptr ? &op_stats_ : nullptr; }

 private:
  QueryStats* stats_;
  WahOpStats op_stats_;
};

/// Builds one encoded axis from a slicer's slot stream: rows arrive in
/// ascending order, each with its slot id on this axis; missing rows are
/// simply not added (except under the range encoding's missing-as-value-0
/// trick, which AddMissingRow feeds). Finish returns the axis's bitvectors
/// in the encoding's canonical layout — bit-identical to the pre-refactor
/// per-encoding build loops.
class AxisEncoder {
 public:
  AxisEncoder(BitmapEncoding encoding, uint32_t num_slots);

  /// Marks `row` as holding slot `slot` (in [0, num_slots)). Rows must
  /// arrive in ascending order; a row may be added to several slots only
  /// under the equality encoding (the kAllOnes ablation strategy).
  void AddRow(uint64_t row, uint32_t slot);

  /// Range encoding only: missing counts as value 0, below the whole
  /// domain, so the row must be 1 in every kept "value <= j" bitmap. A
  /// no-op for the other encodings (their missing rows are absent
  /// everywhere).
  void AddMissingRow(uint64_t row);

  /// Finalizes all bitvectors to `num_rows` bits.
  std::vector<WahBitVector> Finish(uint64_t num_rows);

  /// Bitvectors the encoding stores for a slot domain of `num_slots`:
  /// equality C, range C-1, interval n = C - ceil(C/2) + 1, bit-sliced
  /// ceil(lg(C+1)). The shape contract FromParts and the storage reader
  /// validate against.
  static uint64_t NumBitmaps(BitmapEncoding encoding, uint32_t num_slots);

 private:
  BitmapEncoding encoding_;
  uint32_t num_slots_;
  std::vector<SetBitBuilder> builders_;
  SetBitBuilder range_missing_;  // kRange: seed of the running-OR finish
  bool has_range_missing_ = false;
};

/// A borrowed view of one encoded axis at query time: the slot-domain
/// bitvectors plus the attribute's missing bitvector (B_0, null when the
/// attribute is complete or a non-extra-bitmap strategy is in use).
struct AxisRef {
  uint32_t num_slots = 0;
  std::span<const WahBitVector> bitmaps;
  const WahBitVector* missing = nullptr;
  uint64_t num_rows = 0;
};

/// The evaluation half of the encoding engine: lowers the slot interval
/// `interval` (1-based, lo/hi in [1, num_slots], validated by the caller)
/// over one encoded axis to fused WAH operations — paper Fig. 2 for
/// equality, Fig. 3 for range, the two-bitmap interval rules, and the
/// O'Neil-Quass bit-sliced circuit. `strategy` and `semantics` control the
/// missing-bitvector composition exactly as before the refactor; the
/// caller enforces the strategy/semantics compatibility rules (§4.2).
WahBitVector EvaluateSlotInterval(BitmapEncoding encoding, const AxisRef& axis,
                                  Interval interval, MissingStrategy strategy,
                                  MissingSemantics semantics,
                                  QueryStats* stats);

}  // namespace incdb

#endif  // INCDB_BITMAP_ENCODER_H_
