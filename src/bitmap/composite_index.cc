#include "bitmap/composite_index.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/logging.h"

namespace incdb {

Result<CompositeBitmapIndex> CompositeBitmapIndex::Build(const Table& table,
                                                         Options options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument(
        "cannot build a composite bitmap index on an empty table");
  }
  if (options.scheme == SlotScheme::kDirect) {
    return Status::InvalidArgument(
        "direct slot scheme is BitmapIndex's job; composite kinds are "
        "multi-component or hierarchical");
  }

  const uint64_t n = table.num_rows();
  std::vector<AttributeAxes> attributes;
  std::vector<Slicer> slicers;
  attributes.reserve(table.num_attributes());
  slicers.reserve(table.num_attributes());

  for (size_t a = 0; a < table.num_attributes(); ++a) {
    const Column& column = table.column(a);
    const uint32_t cardinality = column.cardinality();
    AttributeAxes ax;
    ax.cardinality = cardinality;
    ax.has_missing = column.MissingCount() > 0;

    INCDB_ASSIGN_OR_RETURN(Slicer slicer,
                           Slicer::Create(options.scheme, cardinality));
    std::vector<AxisEncoder> encoders;
    encoders.reserve(slicer.num_axes());
    for (size_t axis = 0; axis < slicer.num_axes(); ++axis) {
      encoders.emplace_back(BitmapEncoding::kEquality,
                            slicer.num_slots(axis));
    }
    SetBitBuilder missing_builder;
    for (uint64_t r = 0; r < n; ++r) {
      const Value v = column.Get(r);
      if (IsMissing(v)) {
        // B_{i,0} once per attribute; missing rows are absent from every
        // axis bitmap (the paper's kExtraBitmap strategy, composed per
        // component for free).
        missing_builder.SetBitAt(r);
        continue;
      }
      for (size_t axis = 0; axis < slicer.num_axes(); ++axis) {
        encoders[axis].AddRow(r, slicer.SlotOf(v, axis));
      }
    }
    ax.axes.reserve(slicer.num_axes());
    for (size_t axis = 0; axis < slicer.num_axes(); ++axis) {
      ax.axes.push_back(encoders[axis].Finish(n));
    }
    if (ax.has_missing) ax.missing = missing_builder.Finish(n);
    attributes.push_back(std::move(ax));
    slicers.push_back(std::move(slicer));
  }
  return CompositeBitmapIndex(options, n, std::move(attributes),
                              std::move(slicers));
}

Result<CompositeBitmapIndex> CompositeBitmapIndex::FromParts(
    Options options, uint64_t num_rows,
    std::vector<AttributeAxes> attributes) {
  if (options.scheme == SlotScheme::kDirect) {
    return Status::InvalidArgument(
        "composite parts: direct slot scheme is BitmapIndex's job");
  }
  std::vector<Slicer> slicers;
  slicers.reserve(attributes.size());
  for (size_t a = 0; a < attributes.size(); ++a) {
    const AttributeAxes& ax = attributes[a];
    INCDB_ASSIGN_OR_RETURN(Slicer slicer,
                           Slicer::Create(options.scheme, ax.cardinality));
    if (ax.axes.size() != slicer.num_axes()) {
      return Status::IOError("composite parts: attribute " +
                             std::to_string(a) + " has " +
                             std::to_string(ax.axes.size()) +
                             " axes, slicer implies " +
                             std::to_string(slicer.num_axes()));
    }
    for (size_t axis = 0; axis < slicer.num_axes(); ++axis) {
      if (ax.axes[axis].size() != slicer.num_slots(axis)) {
        return Status::IOError(
            "composite parts: attribute " + std::to_string(a) + " axis " +
            std::to_string(axis) + " has " +
            std::to_string(ax.axes[axis].size()) +
            " bitmaps, slicer implies " +
            std::to_string(slicer.num_slots(axis)));
      }
      for (const WahBitVector& bitmap : ax.axes[axis]) {
        if (bitmap.size() != num_rows) {
          return Status::IOError("composite parts: attribute " +
                                 std::to_string(a) + " bitmap size mismatch");
        }
      }
    }
    if (ax.has_missing != ax.missing.has_value()) {
      return Status::IOError("composite parts: attribute " +
                             std::to_string(a) +
                             " missing-bitmap flag mismatch");
    }
    if (ax.missing.has_value() && ax.missing->size() != num_rows) {
      return Status::IOError("composite parts: attribute " +
                             std::to_string(a) +
                             " missing bitmap size mismatch");
    }
    slicers.push_back(std::move(slicer));
  }
  return CompositeBitmapIndex(options, num_rows, std::move(attributes),
                              std::move(slicers));
}

std::string CompositeBitmapIndex::Name() const {
  return options_.scheme == SlotScheme::kMultiComponent ? "MC-WAH"
                                                        : "HIER-WAH";
}

AxisRef CompositeBitmapIndex::AxisOf(size_t attr, size_t axis) const {
  const AttributeAxes& ax = attributes_[attr];
  AxisRef ref;
  ref.num_slots = slicers_[attr].num_slots(axis);
  ref.bitmaps = std::span<const WahBitVector>(ax.axes[axis]);
  ref.missing = ax.missing.has_value() ? &*ax.missing : nullptr;
  ref.num_rows = num_rows_;
  return ref;
}

WahBitVector CompositeBitmapIndex::EvalMixedRadix(size_t attr, size_t axis,
                                                  uint64_t lo, uint64_t hi,
                                                  QueryStats* stats) const {
  // Rows whose mixed-radix code over axes [0, axis] lies in [lo, hi] —
  // standard digit-range decomposition: split on the top digit, recurse on
  // the edge digits' remainders, answer the aligned middle with one
  // per-axis slot interval. Every per-axis probe goes through the shared
  // equality evaluator under no-match semantics, so B_0 strips missing
  // rows on the complement path and the AND/OR composition never
  // resurrects them.
  auto digit_range = [&](uint64_t d_lo, uint64_t d_hi) -> WahBitVector {
    if (stats != nullptr) ++stats->probe_components;
    return EvaluateSlotInterval(
        BitmapEncoding::kEquality, AxisOf(attr, axis),
        {static_cast<Value>(d_lo + 1), static_cast<Value>(d_hi + 1)},
        MissingStrategy::kExtraBitmap, MissingSemantics::kNoMatch, stats);
  };
  auto count_op = [&](uint64_t n = 1) {
    if (stats != nullptr) stats->bitvector_ops += n;
  };
  if (axis == 0) return digit_range(lo, hi);

  const uint64_t div = slicers_[attr].axes()[axis].divisor;
  const uint64_t d_lo = lo / div;
  const uint64_t d_hi = hi / div;
  const uint64_t rem_lo = lo % div;
  const uint64_t rem_hi = hi % div;

  if (d_lo == d_hi) {
    WahBitVector sub = EvalMixedRadix(attr, axis - 1, rem_lo, rem_hi, stats);
    count_op();
    return digit_range(d_lo, d_lo).And(sub);
  }

  std::vector<WahBitVector> pieces;
  uint64_t mid_lo = d_lo;
  uint64_t mid_hi = d_hi;
  if (rem_lo != 0) {
    // Low edge: top digit d_lo, lower digits >= rem_lo.
    WahBitVector sub = EvalMixedRadix(attr, axis - 1, rem_lo, div - 1, stats);
    count_op();
    pieces.push_back(digit_range(d_lo, d_lo).And(sub));
    ++mid_lo;
  }
  if (rem_hi != div - 1) {
    // High edge: top digit d_hi, lower digits <= rem_hi.
    WahBitVector sub = EvalMixedRadix(attr, axis - 1, 0, rem_hi, stats);
    count_op();
    pieces.push_back(digit_range(d_hi, d_hi).And(sub));
    --mid_hi;
  }
  if (mid_lo <= mid_hi) {
    // Aligned middle: every lower-digit combination matches, so the top
    // digit interval alone decides (slots past the domain hold empty
    // bitmaps and OR away harmlessly).
    pieces.push_back(digit_range(mid_lo, mid_hi));
  }
  if (pieces.size() == 1) return std::move(pieces.front());
  std::vector<const WahBitVector*> ptrs;
  ptrs.reserve(pieces.size());
  for (const WahBitVector& piece : pieces) ptrs.push_back(&piece);
  count_op(pieces.size() - 1);
  WahStatsScope op_scope(stats);
  return WahBitVector::OrMany(ptrs, op_scope.get());
}

WahBitVector CompositeBitmapIndex::EvalHierarchical(
    size_t attr, Interval interval, MissingSemantics semantics,
    QueryStats* stats) const {
  // Segment-tree cover of [lo, hi]: peel an unaligned edge bin per side,
  // ascend one level, repeat — at most two bins per level, all fused into
  // one OrMany. Bin b at level l+1 is exactly the union of level-l bins 2b
  // and 2b+1 (the clipped top bin simply has an absent sibling), so the
  // cover is exact.
  const AttributeAxes& ax = attributes_[attr];
  std::vector<const WahBitVector*> ops;
  int last_level = -1;
  uint64_t levels_probed = 0;
  auto probe = [&](size_t level, uint64_t slot) {
    const WahBitVector& vec = ax.axes[level][static_cast<size_t>(slot)];
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += vec.NumWords();
    }
    if (static_cast<int>(level) != last_level) {
      ++levels_probed;
      last_level = static_cast<int>(level);
    }
    ops.push_back(&vec);
  };

  uint64_t lo = static_cast<uint64_t>(interval.lo) - 1;
  uint64_t hi = static_cast<uint64_t>(interval.hi) - 1;
  size_t level = 0;
  while (true) {
    if (lo > hi) break;
    if (lo == hi) {
      probe(level, lo);
      break;
    }
    if ((lo & 1) != 0) probe(level, lo++);
    if ((hi & 1) == 0) probe(level, hi--);
    if (lo > hi) break;
    lo >>= 1;
    hi >>= 1;
    ++level;
  }
  if (stats != nullptr) stats->probe_levels += levels_probed;

  if (semantics == MissingSemantics::kMatch && ax.missing.has_value()) {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += ax.missing->NumWords();
    }
    ops.push_back(&*ax.missing);
  }
  if (ops.empty()) return WahBitVector::Fill(num_rows_, false);
  if (stats != nullptr) stats->bitvector_ops += ops.size() - 1;
  WahStatsScope op_scope(stats);
  return WahBitVector::OrMany(ops, op_scope.get());
}

Result<WahBitVector> CompositeBitmapIndex::EvaluateInterval(
    size_t attr, Interval interval, MissingSemantics semantics,
    QueryStats* stats) const {
  if (attr >= attributes_.size()) {
    return Status::OutOfRange("attribute index " + std::to_string(attr) +
                              " out of range");
  }
  const AttributeAxes& ax = attributes_[attr];
  if (interval.lo < 1 ||
      interval.hi > static_cast<Value>(ax.cardinality) ||
      interval.lo > interval.hi) {
    return Status::InvalidArgument("interval [" + std::to_string(interval.lo) +
                                   "," + std::to_string(interval.hi) +
                                   "] invalid for cardinality " +
                                   std::to_string(ax.cardinality));
  }

  if (interval.lo == 1 &&
      interval.hi == static_cast<Value>(ax.cardinality)) {
    // Full domain: no probe tree needed (mirrors the equality kind).
    if (semantics == MissingSemantics::kMatch || !ax.missing.has_value()) {
      return WahBitVector::Fill(num_rows_, true);
    }
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      ++stats->bitvector_ops;
      stats->words_touched += ax.missing->NumWords();
    }
    return ax.missing->Not();
  }

  if (options_.scheme == SlotScheme::kHierarchical) {
    return EvalHierarchical(attr, interval, semantics, stats);
  }

  WahBitVector result =
      EvalMixedRadix(attr, slicers_[attr].num_axes() - 1,
                     static_cast<uint64_t>(interval.lo) - 1,
                     static_cast<uint64_t>(interval.hi) - 1, stats);
  if (semantics == MissingSemantics::kMatch && ax.missing.has_value()) {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      ++stats->bitvector_ops;
      stats->words_touched += ax.missing->NumWords();
    }
    result = result.Or(*ax.missing);
  }
  return result;
}

Result<std::vector<WahBitVector>> CompositeBitmapIndex::EvaluateTerms(
    const RangeQuery& query, QueryStats* stats) const {
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must have at least one term");
  }
  std::vector<WahBitVector> terms;
  terms.reserve(query.terms.size());
  for (const QueryTerm& term : query.terms) {
    INCDB_ASSIGN_OR_RETURN(
        WahBitVector term_result,
        EvaluateInterval(term.attribute, term.interval, query.semantics,
                         stats));
    terms.push_back(std::move(term_result));
  }
  return terms;
}

namespace {

std::vector<const WahBitVector*> Pointers(
    const std::vector<WahBitVector>& vecs) {
  std::vector<const WahBitVector*> ptrs;
  ptrs.reserve(vecs.size());
  for (const WahBitVector& vec : vecs) ptrs.push_back(&vec);
  return ptrs;
}

}  // namespace

Result<WahBitVector> CompositeBitmapIndex::ExecuteCompressed(
    const RangeQuery& query, QueryStats* stats) const {
  INCDB_ASSIGN_OR_RETURN(std::vector<WahBitVector> terms,
                         EvaluateTerms(query, stats));
  if (terms.size() == 1) return std::move(terms.front());
  // Cross-attribute conjunction as one fused k-way AND.
  if (stats != nullptr) stats->bitvector_ops += terms.size() - 1;
  WahStatsScope op_scope(stats);
  return WahBitVector::AndMany(Pointers(terms), op_scope.get());
}

Result<BitVector> CompositeBitmapIndex::Execute(const RangeQuery& query,
                                                QueryStats* stats) const {
  INCDB_ASSIGN_OR_RETURN(WahBitVector acc, ExecuteCompressed(query, stats));
  return acc.Decompress();
}

Result<uint64_t> CompositeBitmapIndex::ExecuteCount(const RangeQuery& query,
                                                    QueryStats* stats) const {
  INCDB_ASSIGN_OR_RETURN(std::vector<WahBitVector> terms,
                         EvaluateTerms(query, stats));
  if (stats != nullptr) stats->bitvector_ops += terms.size() - 1;
  WahStatsScope op_scope(stats);
  return WahBitVector::AndManyCount(Pointers(terms), op_scope.get());
}

Status CompositeBitmapIndex::AppendRow(const std::vector<Value>& row) {
  if (row.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, index has " +
        std::to_string(attributes_.size()) + " attributes");
  }
  for (size_t a = 0; a < row.size(); ++a) {
    const Value v = row[a];
    if (v != kMissingValue &&
        (v < 1 || static_cast<uint32_t>(v) > attributes_[a].cardinality)) {
      return Status::OutOfRange("attribute " + std::to_string(a) +
                                ": value " + std::to_string(v) +
                                " outside domain");
    }
  }
  for (size_t a = 0; a < row.size(); ++a) {
    AttributeAxes& ax = attributes_[a];
    const Slicer& slicer = slicers_[a];
    const Value v = row[a];
    const bool missing = IsMissing(v);
    if (missing && !ax.missing.has_value()) {
      // First missing value for this attribute: materialize B_{i,0}.
      ax.missing = WahBitVector::Fill(num_rows_, false);
      ax.has_missing = true;
    }
    for (size_t axis = 0; axis < ax.axes.size(); ++axis) {
      const uint32_t slot = missing ? 0 : slicer.SlotOf(v, axis);
      for (uint32_t s = 0; s < ax.axes[axis].size(); ++s) {
        ax.axes[axis][s].AppendBit(!missing && s == slot);
      }
    }
    if (ax.missing.has_value()) ax.missing->AppendBit(missing);
  }
  ++num_rows_;
  return Status::OK();
}

uint64_t CompositeBitmapIndex::SizeInBytes() const {
  uint64_t total = 0;
  for (const AttributeAxes& ax : attributes_) {
    for (const std::vector<WahBitVector>& axis : ax.axes) {
      for (const WahBitVector& bitmap : axis) total += bitmap.SizeInBytes();
    }
    if (ax.missing.has_value()) total += ax.missing->SizeInBytes();
  }
  return total;
}

size_t CompositeBitmapIndex::NumBitmaps(size_t attr) const {
  const AttributeAxes& ax = attributes_[attr];
  size_t total = ax.missing.has_value() ? 1 : 0;
  for (const std::vector<WahBitVector>& axis : ax.axes) total += axis.size();
  return total;
}

}  // namespace incdb
