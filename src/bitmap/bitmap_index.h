#ifndef INCDB_BITMAP_BITMAP_INDEX_H_
#define INCDB_BITMAP_BITMAP_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bitmap/encoder.h"
#include "compression/wah_bitvector.h"
#include "core/incomplete_index.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

/// WAH-compressed bitmap index over an incomplete table, supporting both
/// query semantics. The direct-slicer composition of the binning x encoding
/// architecture (bitmap/slicer.h x bitmap/encoder.h): one slot per value,
/// any of the four encodings. Implements the paper's interval-evaluation
/// rules exactly: Fig. 2 for equality encoding, Fig. 3 for range encoding;
/// all logical work happens on the compressed form.
class BitmapIndex : public IncompleteIndex {
 public:
  struct Options {
    BitmapEncoding encoding = BitmapEncoding::kEquality;
    MissingStrategy missing_strategy = MissingStrategy::kExtraBitmap;
  };

  /// All bitvectors for one attribute (public so the storage engine can
  /// serialize and reassemble an index without rebuilding it).
  struct AttributeBitmaps {
    uint32_t cardinality = 0;
    bool has_missing = false;
    /// B_{i,0} (kExtraBitmap only; empty optional otherwise).
    std::optional<WahBitVector> missing;
    /// Equality: B_{i,1}..B_{i,C}. Range: B_{i,1}..B_{i,C-1}.
    std::vector<WahBitVector> values;
  };

  /// Builds the index. Fails on an empty table or on an unsupported
  /// combination (kAllOnes/kAllZeros with range encoding).
  static Result<BitmapIndex> Build(const Table& table, Options options);

  /// Reassembles an index from parts the storage engine deserialized (the
  /// bitvectors are typically mmap-borrowed WAH views). Validates shapes —
  /// every bitvector must span `num_rows` bits and each attribute must hold
  /// the bitmap count its encoding implies — not bit contents.
  static Result<BitmapIndex> FromParts(Options options, uint64_t num_rows,
                                       std::vector<AttributeBitmaps> attributes);

  std::string Name() const override;
  Result<BitVector> Execute(const RangeQuery& query,
                            QueryStats* stats = nullptr) const override;
  uint64_t SizeInBytes() const override;

  /// COUNT(*) computed on the compressed form (fills counted in O(1) per
  /// run; no verbatim bitvector is materialized).
  Result<uint64_t> ExecuteCount(const RangeQuery& query,
                                QueryStats* stats = nullptr) const override;

  /// GROUP BY `group_attr` COUNT(*) over the rows matching `query` — the
  /// classic bitmap-index aggregation: the query's compressed result is
  /// ANDed with each group's (encoding-derived) equality bitvector and
  /// counted, entirely on compressed bitvectors. Returns cardinality+1
  /// counts; index 0 is the missing-group bucket, index v the count for
  /// value v. `query` must be a valid query; to group the whole table,
  /// pass a full-domain term under match semantics.
  Result<std::vector<uint64_t>> ExecuteGroupCount(
      const RangeQuery& query, size_t group_attr,
      QueryStats* stats = nullptr) const;

  /// Aggregate of one attribute over the rows matching `query`. Missing
  /// cells of `agg_attr` are excluded from sum/min/max/mean (SQL NULL
  /// semantics) and reported in missing_count. Computed from per-value
  /// compressed counts for any encoding; a bit-sliced index computes the
  /// sum directly from its slices (sum = Σ_k 2^k·count(acc ∧ S_k), the
  /// classic bit-sliced aggregation), which the tests cross-check.
  struct Aggregate {
    uint64_t count = 0;          ///< matching rows with agg_attr present
    uint64_t missing_count = 0;  ///< matching rows with agg_attr missing
    uint64_t sum = 0;
    Value min = 0;               ///< 0 when count == 0
    Value max = 0;
    double mean = 0.0;           ///< 0 when count == 0
  };
  Result<Aggregate> ExecuteAggregate(const RangeQuery& query, size_t agg_attr,
                                     QueryStats* stats = nullptr) const;

  /// Appends one record to the index (incremental maintenance; the bitmap
  /// encodings are append-friendly since every bitvector just grows by one
  /// bit). `row[i]` is the value of attribute i, kMissingValue for missing.
  /// The resulting index is bit-identical to one built from scratch over
  /// the extended data.
  Status AppendRow(const std::vector<Value>& row) override;

  /// Persists the index to a file (the paper's "requisite index files on
  /// disk"). Format: magic INCDBBM1 + options + per-attribute WAH payloads.
  Status Save(const std::string& path) const;

  /// Loads an index written by Save.
  static Result<BitmapIndex> Load(const std::string& path);

  /// Evaluates one interval (one search-key term) to a compressed result —
  /// the paper's Fig. 2 / Fig. 3 logic. Exposed for tests and analysis.
  Result<WahBitVector> EvaluateInterval(size_t attr, Interval interval,
                                        MissingSemantics semantics,
                                        QueryStats* stats = nullptr) const;

  /// Bytes the index would occupy uncompressed (verbatim bitmaps).
  uint64_t VerbatimSizeInBytes() const;

  /// SizeInBytes() / VerbatimSizeInBytes() — the paper's compression ratio.
  double CompressionRatio() const;

  /// Per-attribute compressed size / compression ratio (for Fig. 4 and the
  /// §5.2 real-data analysis).
  uint64_t AttributeSizeInBytes(size_t attr) const;
  double AttributeCompressionRatio(size_t attr) const;

  /// Number of bitvectors stored for attribute `attr` (C_i, C_i ± 1
  /// depending on encoding and missing data).
  size_t NumBitmaps(size_t attr) const;

  BitmapEncoding encoding() const { return options_.encoding; }
  MissingStrategy missing_strategy() const {
    return options_.missing_strategy;
  }
  uint64_t num_rows() const { return num_rows_; }

  /// Storage-engine accessor: all per-attribute bitvector groups.
  const std::vector<AttributeBitmaps>& attributes() const {
    return attributes_;
  }

  /// The missing bitvector B_{i,0}, or nullptr when the attribute has no
  /// missing data (or a non-extra-bitmap strategy is in use).
  const WahBitVector* missing_bitmap(size_t attr) const {
    return attributes_[attr].missing.has_value() ? &*attributes_[attr].missing
                                                 : nullptr;
  }

  /// Value bitvector B_{i,j} (1-based j; equality: j in [1, C], range:
  /// j in [1, C-1]).
  const WahBitVector& value_bitmap(size_t attr, size_t j) const {
    return attributes_[attr].values[j - 1];
  }

 private:
  BitmapIndex(Options options, uint64_t num_rows,
              std::vector<AttributeBitmaps> attributes)
      : options_(options),
        num_rows_(num_rows),
        attributes_(std::move(attributes)) {}

  // The attribute's bitvectors viewed as one encoder axis (the direct
  // slicer has exactly one axis: slot j-1 = value j).
  AxisRef AxisOf(const AttributeBitmaps& ab) const;

  // Shared query path: evaluates every search-key term to a compressed
  // bitvector. ExecuteCompressed fuses them with a k-way AndMany (Execute
  // decompresses that); ExecuteCount feeds them to the fused AndManyCount
  // kernel and never materializes the conjunction at all.
  Result<std::vector<WahBitVector>> EvaluateTerms(const RangeQuery& query,
                                                  QueryStats* stats) const;
  Result<WahBitVector> ExecuteCompressed(const RangeQuery& query,
                                         QueryStats* stats) const;

  Options options_;
  uint64_t num_rows_ = 0;
  std::vector<AttributeBitmaps> attributes_;
};

}  // namespace incdb

#endif  // INCDB_BITMAP_BITMAP_INDEX_H_
