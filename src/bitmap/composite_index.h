#ifndef INCDB_BITMAP_COMPOSITE_INDEX_H_
#define INCDB_BITMAP_COMPOSITE_INDEX_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bitmap/encoder.h"
#include "bitmap/slicer.h"
#include "compression/wah_bitvector.h"
#include "core/incomplete_index.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

/// WAH bitmap index over a multi-axis slicer — the composite half of the
/// binning x encoding architecture (docs/ENCODINGS.md). Each attribute is
/// sliced into several axes, every axis equality-encoded through the shared
/// AxisEncoder, and a predicate lowers to an AND/OR tree of per-axis slot
/// probes:
///
///  - kMultiComponent (Chan & Ioannidis): mixed-radix digits, one axis per
///    component. Storage O(sum of radices) ~ 2*sqrt(C) bitmaps instead of
///    O(C); a range decomposes into per-digit pieces ANDed across axes.
///  - kHierarchical: fanout-2 bin levels, one axis per level. Storage
///    ~2C bitmaps, but a wide range is covered by <= 2 aligned bins per
///    level — O(log C) probes where equality encoding pays O(C).
///
/// Missing data uses the paper's B_{i,0} trick once per attribute (not per
/// axis): missing rows are absent from every axis bitmap, and the per-axis
/// equality evaluator composes B_0 into its complement path so wide ranges
/// stay cheap without resurrecting missing rows.
class CompositeBitmapIndex : public IncompleteIndex {
 public:
  struct Options {
    SlotScheme scheme = SlotScheme::kMultiComponent;
  };

  /// All bitvectors for one attribute: per-axis equality bitmaps plus the
  /// shared missing bitvector (public so the storage engine can serialize
  /// and reassemble without rebuilding).
  struct AttributeAxes {
    uint32_t cardinality = 0;
    bool has_missing = false;
    /// B_{i,0}; empty optional when the attribute is complete.
    std::optional<WahBitVector> missing;
    /// axes[a][s] = rows whose value maps to slot s on axis a.
    std::vector<std::vector<WahBitVector>> axes;
  };

  /// Builds the index. Fails on an empty table or a direct scheme (that is
  /// BitmapIndex's job).
  static Result<CompositeBitmapIndex> Build(const Table& table,
                                            Options options);

  /// Reassembles an index from storage-deserialized parts (typically
  /// mmap-borrowed WAH views). Validates every axis shape against the
  /// slicer geometry derived from (scheme, cardinality) and every bitvector
  /// length against `num_rows`.
  static Result<CompositeBitmapIndex> FromParts(
      Options options, uint64_t num_rows,
      std::vector<AttributeAxes> attributes);

  std::string Name() const override;
  Result<BitVector> Execute(const RangeQuery& query,
                            QueryStats* stats = nullptr) const override;
  uint64_t SizeInBytes() const override;
  Result<uint64_t> ExecuteCount(const RangeQuery& query,
                                QueryStats* stats = nullptr) const override;
  Status AppendRow(const std::vector<Value>& row) override;

  /// Evaluates one search-key term to a compressed result — the probe-tree
  /// lowering described above. Exposed for tests and the probe-count
  /// assertions (stats->probe_components / probe_levels observability).
  Result<WahBitVector> EvaluateInterval(size_t attr, Interval interval,
                                        MissingSemantics semantics,
                                        QueryStats* stats = nullptr) const;

  SlotScheme scheme() const { return options_.scheme; }
  uint64_t num_rows() const { return num_rows_; }
  const std::vector<AttributeAxes>& attributes() const { return attributes_; }

  /// Bitvectors stored for attribute `attr` (all axes + B_0 if present).
  size_t NumBitmaps(size_t attr) const;

 private:
  CompositeBitmapIndex(Options options, uint64_t num_rows,
                       std::vector<AttributeAxes> attributes,
                       std::vector<Slicer> slicers)
      : options_(options),
        num_rows_(num_rows),
        attributes_(std::move(attributes)),
        slicers_(std::move(slicers)) {}

  // One axis of one attribute viewed through the encoder's query interface
  // (the attribute's B_0 rides along on every axis).
  AxisRef AxisOf(size_t attr, size_t axis) const;

  // Mixed-radix range recursion over axes [0, axis]: rows whose composite
  // code (digits below and including `axis`) lies in [lo, hi].
  WahBitVector EvalMixedRadix(size_t attr, size_t axis, uint64_t lo,
                              uint64_t hi, QueryStats* stats) const;

  // Segment-tree cover: <= 2 aligned bins per level OR-ed in one fused pass.
  WahBitVector EvalHierarchical(size_t attr, Interval interval,
                                MissingSemantics semantics,
                                QueryStats* stats) const;

  Result<std::vector<WahBitVector>> EvaluateTerms(const RangeQuery& query,
                                                  QueryStats* stats) const;
  Result<WahBitVector> ExecuteCompressed(const RangeQuery& query,
                                         QueryStats* stats) const;

  Options options_;
  uint64_t num_rows_ = 0;
  std::vector<AttributeAxes> attributes_;
  /// Per-attribute slot geometry, rebuilt from (scheme, cardinality) — not
  /// serialized.
  std::vector<Slicer> slicers_;
};

}  // namespace incdb

#endif  // INCDB_BITMAP_COMPOSITE_INDEX_H_
