#include "bitmap/encoder.h"

#include <algorithm>

#include "common/bitutil.h"
#include "common/logging.h"

namespace incdb {

std::string_view BitmapEncodingToString(BitmapEncoding encoding) {
  switch (encoding) {
    case BitmapEncoding::kEquality:
      return "BEE";
    case BitmapEncoding::kRange:
      return "BRE";
    case BitmapEncoding::kInterval:
      return "BIE";
    case BitmapEncoding::kBitSliced:
      return "BSL";
  }
  return "unknown";
}

uint32_t IntervalEncodingM(uint32_t cardinality) {
  return (cardinality + 1) / 2;
}

uint32_t IntervalEncodingN(uint32_t cardinality) {
  return cardinality - IntervalEncodingM(cardinality) + 1;
}

AxisEncoder::AxisEncoder(BitmapEncoding encoding, uint32_t num_slots)
    : encoding_(encoding), num_slots_(num_slots) {
  // Range builds on the full C-deep equality scaffold; Finish folds it into
  // the C-1 stored cumulative bitmaps.
  builders_.resize(encoding == BitmapEncoding::kRange
                       ? num_slots
                       : static_cast<size_t>(NumBitmaps(encoding, num_slots)));
}

void AxisEncoder::AddRow(uint64_t row, uint32_t slot) {
  INCDB_DCHECK(slot < num_slots_);
  switch (encoding_) {
    case BitmapEncoding::kEquality:
    case BitmapEncoding::kRange:
      // Range shares the equality scaffold; Finish folds it into the
      // cumulative "value <= j" ladder.
      builders_[slot].SetBitAt(row);
      break;
    case BitmapEncoding::kInterval: {
      // Slot s (value s+1) belongs to I_j for j in [s-m+2, s+1] clamped to
      // the stored window [1, n].
      const uint32_t value = slot + 1;
      const uint32_t m = IntervalEncodingM(num_slots_);
      const uint32_t n_bitmaps = static_cast<uint32_t>(builders_.size());
      const uint32_t first = value >= m ? value - m + 1 : 1;
      const uint32_t last = std::min(n_bitmaps, value);
      for (uint32_t j = first; j <= last; ++j) builders_[j - 1].SetBitAt(row);
      break;
    }
    case BitmapEncoding::kBitSliced: {
      // Binary-encode code = slot+1 (the all-zeros code stays reserved for
      // missing) into the slice builders.
      for (uint32_t code = slot + 1; code != 0; code &= code - 1) {
        builders_[static_cast<size_t>(bitutil::CountTrailingZeros(code))]
            .SetBitAt(row);
      }
      break;
    }
  }
}

void AxisEncoder::AddMissingRow(uint64_t row) {
  if (encoding_ != BitmapEncoding::kRange) return;
  range_missing_.SetBitAt(row);
  has_range_missing_ = true;
}

std::vector<WahBitVector> AxisEncoder::Finish(uint64_t num_rows) {
  std::vector<WahBitVector> bitmaps;
  bitmaps.reserve(builders_.size());
  if (encoding_ == BitmapEncoding::kRange) {
    // B_j = "value <= j" as a running OR over the equality scaffold, seeded
    // from the missing rows (missing counts as value 0, below the domain);
    // the all-ones top bitmap B_C is dropped (paper §4.3).
    WahBitVector running = has_range_missing_
                               ? range_missing_.Finish(num_rows)
                               : WahBitVector::Fill(num_rows, false);
    for (uint32_t j = 1; j <= num_slots_ - 1; ++j) {
      running = running.Or(builders_[j - 1].Finish(num_rows));
      bitmaps.push_back(running);
    }
    // The scaffold holds num_slots_ builders but only the first
    // num_slots_-1 feed stored bitmaps (the top one would OR into the
    // dropped all-ones B_C).
    return bitmaps;
  }
  for (SetBitBuilder& builder : builders_) {
    bitmaps.push_back(builder.Finish(num_rows));
  }
  return bitmaps;
}

uint64_t AxisEncoder::NumBitmaps(BitmapEncoding encoding, uint32_t num_slots) {
  switch (encoding) {
    case BitmapEncoding::kEquality:
      return num_slots;
    case BitmapEncoding::kRange:
      return num_slots > 0 ? num_slots - 1 : 0;
    case BitmapEncoding::kInterval:
      return IntervalEncodingN(num_slots);
    case BitmapEncoding::kBitSliced:
      return static_cast<uint64_t>(bitutil::BitsForCardinality(num_slots));
  }
  return 0;
}

namespace {

// A bitvector either borrowed from index storage or synthesized on the
// fly. Lets RangeLE hand out stored bitmaps without copying their
// compressed payload (the old hot-path cost of every BRE query).
struct BitmapRef {
  std::optional<WahBitVector> owned;
  const WahBitVector* borrowed = nullptr;

  const WahBitVector& get() const {
    return owned.has_value() ? *owned : *borrowed;
  }
};

// Range encoding: bitvector for "value <= j" (j in [0, C]); j = 0 is the
// missing bitmap (zero fill when the attribute is complete), j = C the
// dropped all-ones bitmap.
BitmapRef RangeLE(const AxisRef& axis, Value j, QueryStats* stats) {
  auto borrow = [&](const WahBitVector& vec) -> BitmapRef {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += vec.NumWords();
    }
    return BitmapRef{std::nullopt, &vec};
  };
  if (j <= 0) {
    // "value <= 0" = the missing rows (missing is encoded as value 0).
    if (axis.missing != nullptr) return borrow(*axis.missing);
    return BitmapRef{WahBitVector::Fill(axis.num_rows, false), nullptr};
  }
  if (static_cast<uint32_t>(j) >= axis.num_slots) {
    // The dropped all-ones B_C.
    return BitmapRef{WahBitVector::Fill(axis.num_rows, true), nullptr};
  }
  return borrow(axis.bitmaps[static_cast<size_t>(j) - 1]);
}

WahBitVector EvaluateEquality(const AxisRef& axis, Interval interval,
                              MissingStrategy strategy,
                              MissingSemantics semantics, QueryStats* stats) {
  const uint32_t cardinality = axis.num_slots;
  const Value lo = interval.lo;
  const Value hi = interval.hi;
  auto access = [&](const WahBitVector& bitmap) -> const WahBitVector* {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += bitmap.NumWords();
    }
    return &bitmap;
  };
  // Collects B_{i,from} .. B_{i,to} as operands for one fused OrMany.
  auto collect = [&](std::vector<const WahBitVector*>& ops, Value from,
                     Value to) {
    for (Value j = from; j <= to; ++j) {
      ops.push_back(access(axis.bitmaps[static_cast<size_t>(j) - 1]));
    }
  };
  // Single-pass k-way union; zero fill when there is nothing to unite.
  auto fused_or = [&](const std::vector<const WahBitVector*>& ops)
      -> WahBitVector {
    if (ops.empty()) return WahBitVector::Fill(axis.num_rows, false);
    if (stats != nullptr) stats->bitvector_ops += ops.size() - 1;
    WahStatsScope op_scope(stats);
    return WahBitVector::OrMany(ops, op_scope.get());
  };

  // Paper Fig. 2: use the direct OR when the interval covers at most half
  // the domain, otherwise complement the OR of the outside bitmaps. We pick
  // the side with fewer bitmaps, which realizes the paper's worst-case
  // bound of min(AS, 1-AS) * C + 1 bitvector accesses. Either side is one
  // fused OrMany pass instead of a pairwise fold.
  const Value width = hi - lo + 1;
  const bool narrow = width <= static_cast<Value>(cardinality) - width;
  std::vector<const WahBitVector*> ops;
  ops.reserve(static_cast<size_t>(
      (narrow ? width : static_cast<Value>(cardinality) - width) + 1));

  if (strategy == MissingStrategy::kAllZeros) {
    // Rejected alternative: missing rows appear in no bitmap, so the
    // complement path would resurrect them; every interval must be answered
    // by the direct OR (the performance drawback the ablation shows).
    collect(ops, lo, hi);
    return fused_or(ops);
  }

  if (strategy == MissingStrategy::kAllOnes) {
    // Rejected alternative (match semantics only): missing rows are 1 in
    // every bitmap, so the direct OR already includes them; the complement
    // path must recover them by ANDing two value bitmaps (only missing rows
    // are set in more than one).
    if (narrow) {
      collect(ops, lo, hi);
      return fused_or(ops);
    }
    collect(ops, 1, lo - 1);
    collect(ops, hi + 1, static_cast<Value>(cardinality));
    WahBitVector result = fused_or(ops).Not();
    if (stats != nullptr) ++stats->bitvector_ops;
    if (cardinality >= 2) {
      WahBitVector missing_rows =
          access(axis.bitmaps[0])->And(*access(axis.bitmaps[1]));
      result = result.Or(missing_rows);
      if (stats != nullptr) stats->bitvector_ops += 2;
    }
    return result;
  }

  // kExtraBitmap — the paper's design (Fig. 2).
  if (narrow) {
    // One fused pass over the inside bitmaps plus B_{i,0} when missing rows
    // count as matches.
    collect(ops, lo, hi);
    if (semantics == MissingSemantics::kMatch && axis.missing != nullptr) {
      ops.push_back(access(*axis.missing));
    }
    return fused_or(ops);
  }
  collect(ops, 1, lo - 1);
  collect(ops, hi + 1, static_cast<Value>(cardinality));
  if (semantics == MissingSemantics::kNoMatch && axis.missing != nullptr) {
    // NOT(outside OR B_0): the complement alone would admit missing rows.
    ops.push_back(access(*axis.missing));
  }
  WahBitVector result = fused_or(ops).Not();
  if (stats != nullptr) ++stats->bitvector_ops;
  return result;
}

WahBitVector EvaluateRange(const AxisRef& axis, Interval interval,
                           MissingSemantics semantics, QueryStats* stats) {
  const Value cardinality = static_cast<Value>(axis.num_slots);
  const Value lo = interval.lo;
  const Value hi = interval.hi;
  auto count_op = [&](int n = 1) {
    if (stats != nullptr) stats->bitvector_ops += static_cast<uint64_t>(n);
  };
  auto access_missing = [&]() -> const WahBitVector& {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += axis.missing->NumWords();
    }
    return *axis.missing;
  };
  auto or_missing = [&](WahBitVector r) -> WahBitVector {
    if (axis.missing != nullptr) {
      count_op();
      return r.Or(access_missing());
    }
    return r;
  };
  auto xor_missing = [&](WahBitVector r) -> WahBitVector {
    if (axis.missing != nullptr) {
      count_op();
      return r.Xor(access_missing());
    }
    return r;
  };

  if (semantics == MissingSemantics::kMatch) {
    // Paper Fig. 3(a).
    if (cardinality == 1) return WahBitVector::Fill(axis.num_rows, true);
    if (lo == hi) {
      if (lo == 1) return RangeLE(axis, 1, stats).get();
      if (lo == cardinality) {
        count_op();
        return or_missing(RangeLE(axis, lo - 1, stats).get().Not());
      }
      count_op();
      return or_missing(RangeLE(axis, lo, stats)
                            .get()
                            .Xor(RangeLE(axis, lo - 1, stats).get()));
    }
    if (lo == 1 && hi == cardinality) {
      return WahBitVector::Fill(axis.num_rows, true);
    }
    if (lo == 1) return RangeLE(axis, hi, stats).get();
    if (hi == cardinality) {
      count_op();
      return or_missing(RangeLE(axis, lo - 1, stats).get().Not());
    }
    count_op();
    return or_missing(
        RangeLE(axis, hi, stats).get().Xor(RangeLE(axis, lo - 1, stats).get()));
  }

  // Paper Fig. 3(b) — missing is not a match.
  if (cardinality == 1) {
    if (axis.missing != nullptr) {
      count_op();
      return access_missing().Not();
    }
    return WahBitVector::Fill(axis.num_rows, true);
  }
  if (lo == hi) {
    if (lo == 1) return xor_missing(RangeLE(axis, 1, stats).get());
    if (lo == cardinality) {
      count_op();
      return RangeLE(axis, lo - 1, stats).get().Not();
    }
    count_op();
    return RangeLE(axis, lo, stats)
        .get()
        .Xor(RangeLE(axis, lo - 1, stats).get());
  }
  if (lo == 1 && hi == cardinality) {
    if (axis.missing != nullptr) {
      count_op();
      return access_missing().Not();
    }
    return WahBitVector::Fill(axis.num_rows, true);
  }
  if (lo == 1) return xor_missing(RangeLE(axis, hi, stats).get());
  if (hi == cardinality) {
    count_op();
    return RangeLE(axis, lo - 1, stats).get().Not();
  }
  count_op();
  return RangeLE(axis, hi, stats).get().Xor(RangeLE(axis, lo - 1, stats).get());
}

WahBitVector EvaluateIntervalEncoded(const AxisRef& axis, Interval interval,
                                     MissingSemantics semantics,
                                     QueryStats* stats) {
  // Two-bitmap evaluation rules for the interval encoding, derived from
  // I_j = [j, j+m-1], m = ceil(C/2), n = C-m+1 stored bitmaps. For a query
  // [l, h] of width w = h-l+1:
  //   w == C             -> all ones (no bitmap touched)
  //   w == m             -> I_l
  //   w  > m             -> I_l OR I_{h-m+1}        ([l,l+m-1] ∪ [h-m+1,h],
  //                         contiguous because w <= C <= 2m)
  //   w  < m and h < m   -> I_l AND NOT I_{h+1}     (bottom corner)
  //   w  < m and l > n   -> I_{h-m+1} AND NOT I_{l-m}  (top corner)
  //   w  < m otherwise   -> I_l AND I_{h-m+1}       (window intersection)
  // Missing rows are 0 in every I_j, so: match semantics ORs in B_{i,0};
  // no-match gets correct results for free (the full-domain case excepted,
  // which needs NOT B_{i,0}).
  const Value cardinality = static_cast<Value>(axis.num_slots);
  const Value m = static_cast<Value>(IntervalEncodingM(axis.num_slots));
  const Value n = static_cast<Value>(IntervalEncodingN(axis.num_slots));
  const Value lo = interval.lo;
  const Value hi = interval.hi;
  const Value width = hi - lo + 1;
  auto bitmap = [&](Value j) -> const WahBitVector& {
    INCDB_DCHECK(j >= 1 && j <= n);
    const WahBitVector& vec = axis.bitmaps[static_cast<size_t>(j) - 1];
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += vec.NumWords();
    }
    return vec;
  };
  auto missing_bitmap = [&]() -> const WahBitVector& {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += axis.missing->NumWords();
    }
    return *axis.missing;
  };
  auto count_op = [&]() {
    if (stats != nullptr) ++stats->bitvector_ops;
  };
  const bool or_in_missing =
      semantics == MissingSemantics::kMatch && axis.missing != nullptr;

  if (width == cardinality) {
    if (semantics == MissingSemantics::kMatch || axis.missing == nullptr) {
      return WahBitVector::Fill(axis.num_rows, true);
    }
    count_op();
    return missing_bitmap().Not();
  }

  // The union-shaped cases fuse every operand (including B_{i,0} under
  // match semantics) into one OrMany pass.
  if (width >= m) {
    std::vector<const WahBitVector*> ops;
    ops.push_back(&bitmap(lo));
    if (width > m) ops.push_back(&bitmap(hi - m + 1));
    if (or_in_missing) ops.push_back(&missing_bitmap());
    if (stats != nullptr) stats->bitvector_ops += ops.size() - 1;
    WahStatsScope op_scope(stats);
    return WahBitVector::OrMany(ops, op_scope.get());
  }

  WahBitVector result;
  if (hi < m) {
    result = bitmap(lo).AndNot(bitmap(hi + 1));
    count_op();
  } else if (lo > n) {
    result = bitmap(hi - m + 1).AndNot(bitmap(lo - m));
    count_op();
  } else {
    result = bitmap(lo).And(bitmap(hi - m + 1));
    count_op();
  }
  if (or_in_missing) {
    result = result.Or(missing_bitmap());
    count_op();
  }
  return result;
}

WahBitVector EvaluateBitSliced(const AxisRef& axis, Interval interval,
                               MissingSemantics semantics, QueryStats* stats) {
  // O'Neil-Quass bit-sliced evaluation over the compressed slices.
  // Codes: missing = 0, value v = v; slices S_0..S_{b-1} (LSB first).
  //
  //   EQ(v): running AND of S_k (bit set) / AND-NOT S_k (bit clear).
  //   LE(v): the classic circuit — walk slices MSB→LSB keeping
  //          BLT (certainly less) and BEQ (equal so far):
  //            bit k of v set:   BLT |= BEQ & ~S_k;  BEQ &= S_k
  //            bit k of v clear: BEQ &= ~S_k
  //          LE = BLT | BEQ.
  //   [lo, hi]: LE(hi) AND NOT (lo == 1 ? B_0 : LE(lo-1)) — code 0
  //   (missing) is below every value, so the subtraction also strips
  //   missing rows; match semantics then OR B_0 back in.
  const Value cardinality = static_cast<Value>(axis.num_slots);
  const Value lo = interval.lo;
  const Value hi = interval.hi;
  const int num_slices = static_cast<int>(axis.bitmaps.size());
  auto slice = [&](int k) -> const WahBitVector& {
    const WahBitVector& vec = axis.bitmaps[static_cast<size_t>(k)];
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += vec.NumWords();
    }
    return vec;
  };
  auto count_op = [&](int n = 1) {
    if (stats != nullptr) stats->bitvector_ops += static_cast<uint64_t>(n);
  };
  auto equals = [&](Value v) -> WahBitVector {
    // One fused pass of AND_k (bit k set ? S_k : NOT S_k) — the per-operand
    // complement never materializes NOT S_k.
    std::vector<WahBitVector::Operand> ops;
    ops.reserve(static_cast<size_t>(num_slices));
    for (int k = num_slices - 1; k >= 0; --k) {
      ops.push_back({&slice(k), ((v >> k) & 1) == 0});
    }
    count_op(num_slices);
    WahStatsScope op_scope(stats);
    return WahBitVector::AndMany(std::span<const WahBitVector::Operand>(ops),
                                 op_scope.get());
  };
  auto less_equal = [&](Value v) -> WahBitVector {
    WahBitVector blt = WahBitVector::Fill(axis.num_rows, false);
    WahBitVector beq = WahBitVector::Fill(axis.num_rows, true);
    for (int k = num_slices - 1; k >= 0; --k) {
      const WahBitVector& sk = slice(k);
      if ((v >> k) & 1) {
        blt = blt.Or(beq.AndNot(sk));
        beq = beq.And(sk);
        count_op(3);
      } else {
        beq = beq.AndNot(sk);
        count_op();
      }
    }
    count_op();
    return blt.Or(beq);
  };
  auto missing_rows = [&]() -> WahBitVector {
    if (axis.missing == nullptr) {
      return WahBitVector::Fill(axis.num_rows, false);
    }
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += axis.missing->NumWords();
    }
    return *axis.missing;
  };

  WahBitVector base;
  if (lo == hi) {
    base = equals(lo);  // code lo >= 1, so missing (code 0) is excluded
  } else {
    WahBitVector le_hi = hi == cardinality
                             ? WahBitVector::Fill(axis.num_rows, true)
                             : less_equal(hi);
    // Subtract codes <= lo-1; LE(0) is exactly the missing rows.
    WahBitVector below = lo == 1 ? missing_rows() : less_equal(lo - 1);
    base = le_hi.AndNot(below);
    count_op();
  }
  if (semantics == MissingSemantics::kMatch && axis.missing != nullptr) {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += axis.missing->NumWords();
    }
    base = base.Or(*axis.missing);
    count_op();
  }
  return base;
}

}  // namespace

WahBitVector EvaluateSlotInterval(BitmapEncoding encoding, const AxisRef& axis,
                                  Interval interval, MissingStrategy strategy,
                                  MissingSemantics semantics,
                                  QueryStats* stats) {
  switch (encoding) {
    case BitmapEncoding::kEquality:
      return EvaluateEquality(axis, interval, strategy, semantics, stats);
    case BitmapEncoding::kRange:
      return EvaluateRange(axis, interval, semantics, stats);
    case BitmapEncoding::kInterval:
      return EvaluateIntervalEncoded(axis, interval, semantics, stats);
    case BitmapEncoding::kBitSliced:
      return EvaluateBitSliced(axis, interval, semantics, stats);
  }
  return WahBitVector::Fill(axis.num_rows, false);
}

}  // namespace incdb
