#include "bitmap/bitmap_index.h"

#include <algorithm>
#include <fstream>

#include "bitmap/slicer.h"
#include "common/bitutil.h"
#include "common/io.h"
#include "common/logging.h"

namespace incdb {

Result<BitmapIndex> BitmapIndex::Build(const Table& table, Options options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot build a bitmap index on an empty table");
  }
  if (options.missing_strategy != MissingStrategy::kExtraBitmap &&
      options.encoding != BitmapEncoding::kEquality) {
    return Status::NotSupported(
        "kAllOnes/kAllZeros missing strategies apply to equality encoding only");
  }

  const uint64_t n = table.num_rows();
  std::vector<AttributeBitmaps> attributes;
  attributes.reserve(table.num_attributes());

  for (size_t a = 0; a < table.num_attributes(); ++a) {
    const Column& column = table.column(a);
    const uint32_t cardinality = column.cardinality();
    AttributeBitmaps ab;
    ab.cardinality = cardinality;
    ab.has_missing = column.MissingCount() > 0;

    if (options.missing_strategy == MissingStrategy::kAllOnes &&
        ab.has_missing && cardinality == 1) {
      return Status::NotSupported(
          "attribute '" + table.schema().attribute(a).name +
          "': kAllOnes cannot distinguish missing from the single value when "
          "cardinality is 1 (paper §4.2)");
    }

    // One direct axis (slot j-1 = value j) fed through the shared encoding
    // engine; the composite index kinds run the same loop over multi-axis
    // slicers (composite_index.cc).
    INCDB_ASSIGN_OR_RETURN(Slicer slicer,
                           Slicer::Create(SlotScheme::kDirect, cardinality));
    AxisEncoder encoder(options.encoding, cardinality);
    SetBitBuilder missing_builder;
    for (uint64_t r = 0; r < n; ++r) {
      const Value v = column.Get(r);
      if (IsMissing(v)) {
        switch (options.missing_strategy) {
          case MissingStrategy::kExtraBitmap:
            missing_builder.SetBitAt(r);
            encoder.AddMissingRow(r);  // range: missing counts as value 0
            break;
          case MissingStrategy::kAllOnes:
            for (uint32_t s = 0; s < cardinality; ++s) encoder.AddRow(r, s);
            break;
          case MissingStrategy::kAllZeros:
            break;  // absent from every bitmap
        }
      } else {
        encoder.AddRow(r, slicer.SlotOf(v, 0));
      }
    }
    ab.values = encoder.Finish(n);
    if (ab.has_missing &&
        options.missing_strategy == MissingStrategy::kExtraBitmap) {
      ab.missing = missing_builder.Finish(n);
    }
    attributes.push_back(std::move(ab));
  }
  return BitmapIndex(options, n, std::move(attributes));
}

std::string BitmapIndex::Name() const {
  std::string name(BitmapEncodingToString(options_.encoding));
  name += "-WAH";
  switch (options_.missing_strategy) {
    case MissingStrategy::kExtraBitmap:
      break;
    case MissingStrategy::kAllOnes:
      name += "(all-ones)";
      break;
    case MissingStrategy::kAllZeros:
      name += "(all-zeros)";
      break;
  }
  return name;
}

AxisRef BitmapIndex::AxisOf(const AttributeBitmaps& ab) const {
  AxisRef axis;
  axis.num_slots = ab.cardinality;
  axis.bitmaps = std::span<const WahBitVector>(ab.values);
  axis.missing = ab.missing.has_value() ? &*ab.missing : nullptr;
  axis.num_rows = num_rows_;
  return axis;
}

Result<WahBitVector> BitmapIndex::EvaluateInterval(size_t attr,
                                                   Interval interval,
                                                   MissingSemantics semantics,
                                                   QueryStats* stats) const {
  if (attr >= attributes_.size()) {
    return Status::OutOfRange("attribute index " + std::to_string(attr) +
                              " out of range");
  }
  const AttributeBitmaps& ab = attributes_[attr];
  if (interval.lo < 1 ||
      interval.hi > static_cast<Value>(ab.cardinality) ||
      interval.lo > interval.hi) {
    return Status::InvalidArgument("interval [" + std::to_string(interval.lo) +
                                   "," + std::to_string(interval.hi) +
                                   "] invalid for cardinality " +
                                   std::to_string(ab.cardinality));
  }
  if (options_.missing_strategy == MissingStrategy::kAllOnes &&
      semantics != MissingSemantics::kMatch) {
    return Status::NotSupported(
        "kAllOnes encodes missing as a universal match; it cannot answer "
        "missing-not-match queries (paper §4.2)");
  }
  if (options_.missing_strategy == MissingStrategy::kAllZeros &&
      semantics != MissingSemantics::kNoMatch) {
    return Status::NotSupported(
        "kAllZeros erases missing rows; it cannot answer missing-is-match "
        "queries (paper §4.2)");
  }
  return EvaluateSlotInterval(options_.encoding, AxisOf(ab), interval,
                              options_.missing_strategy, semantics, stats);
}

Result<std::vector<WahBitVector>> BitmapIndex::EvaluateTerms(
    const RangeQuery& query, QueryStats* stats) const {
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must have at least one term");
  }
  std::vector<WahBitVector> terms;
  terms.reserve(query.terms.size());
  for (const QueryTerm& term : query.terms) {
    INCDB_ASSIGN_OR_RETURN(
        WahBitVector term_result,
        EvaluateInterval(term.attribute, term.interval, query.semantics,
                         stats));
    terms.push_back(std::move(term_result));
  }
  return terms;
}

namespace {

std::vector<const WahBitVector*> Pointers(
    const std::vector<WahBitVector>& vecs) {
  std::vector<const WahBitVector*> ptrs;
  ptrs.reserve(vecs.size());
  for (const WahBitVector& vec : vecs) ptrs.push_back(&vec);
  return ptrs;
}

// Bit-sliced "count of rows matching `query result` AND value == v": one
// fused AndManyCount over the accumulator and the (optionally complemented)
// slices — neither the equality bitvector nor the conjunction is ever
// materialized.
uint64_t FusedSlicedValueCount(const WahBitVector& acc,
                               const std::vector<WahBitVector>& slices,
                               uint32_t v, QueryStats* stats) {
  std::vector<WahBitVector::Operand> ops;
  ops.reserve(slices.size() + 1);
  ops.push_back({&acc, false});
  for (size_t k = 0; k < slices.size(); ++k) {
    ops.push_back({&slices[k], ((v >> k) & 1) == 0});
  }
  if (stats != nullptr) {
    stats->bitvectors_accessed += slices.size();
    stats->bitvector_ops += slices.size();
    stats->words_touched += acc.NumWords();
    for (const WahBitVector& s : slices) stats->words_touched += s.NumWords();
  }
  WahStatsScope op_scope(stats);
  return WahBitVector::AndManyCount(
      std::span<const WahBitVector::Operand>(ops), op_scope.get());
}

}  // namespace

Result<WahBitVector> BitmapIndex::ExecuteCompressed(const RangeQuery& query,
                                                    QueryStats* stats) const {
  INCDB_ASSIGN_OR_RETURN(std::vector<WahBitVector> terms,
                         EvaluateTerms(query, stats));
  if (terms.size() == 1) return std::move(terms.front());
  // Cross-attribute conjunction as one fused k-way AND.
  if (stats != nullptr) stats->bitvector_ops += terms.size() - 1;
  WahStatsScope op_scope(stats);
  return WahBitVector::AndMany(Pointers(terms), op_scope.get());
}

Result<BitVector> BitmapIndex::Execute(const RangeQuery& query,
                                       QueryStats* stats) const {
  INCDB_ASSIGN_OR_RETURN(WahBitVector acc, ExecuteCompressed(query, stats));
  return acc.Decompress();
}

Result<BitmapIndex::Aggregate> BitmapIndex::ExecuteAggregate(
    const RangeQuery& query, size_t agg_attr, QueryStats* stats) const {
  if (agg_attr >= attributes_.size()) {
    return Status::OutOfRange("aggregate attribute index " +
                              std::to_string(agg_attr) + " out of range");
  }
  INCDB_ASSIGN_OR_RETURN(WahBitVector acc, ExecuteCompressed(query, stats));
  const AttributeBitmaps& ab = attributes_[agg_attr];
  Aggregate aggregate;
  WahStatsScope op_scope(stats);

  if (options_.encoding == BitmapEncoding::kBitSliced) {
    // Bit-sliced fast path: SUM = Σ_k 2^k * |acc ∧ S_k|; COUNT = matching
    // rows that appear in at least one slice... cheaper: total matches
    // minus the missing ones (code 0 is absent from every slice, but so is
    // no real value, since values start at 1 and always have some bit set).
    // Every popcount runs through the fused AndCount kernel.
    for (size_t k = 0; k < ab.values.size(); ++k) {
      if (stats != nullptr) {
        ++stats->bitvectors_accessed;
        ++stats->bitvector_ops;
        stats->words_touched += acc.NumWords() + ab.values[k].NumWords();
      }
      aggregate.sum += (uint64_t{1} << k) *
                       WahBitVector::AndCount(acc, ab.values[k],
                                              op_scope.get());
    }
    if (ab.missing.has_value()) {
      if (stats != nullptr) {
        ++stats->bitvectors_accessed;
        ++stats->bitvector_ops;
        stats->words_touched += acc.NumWords() + ab.missing->NumWords();
      }
      aggregate.missing_count =
          WahBitVector::AndCount(acc, *ab.missing, op_scope.get());
    }
    aggregate.count = acc.Count() - aggregate.missing_count;
    // Min/max still need the per-value walk (early-exit from each end);
    // each probe is one fused count over acc and the slices.
    for (uint32_t v = 1; v <= ab.cardinality && aggregate.count > 0; ++v) {
      if (FusedSlicedValueCount(acc, ab.values, v, stats) > 0) {
        aggregate.min = static_cast<Value>(v);
        break;
      }
    }
    for (uint32_t v = ab.cardinality; v >= 1 && aggregate.count > 0; --v) {
      if (FusedSlicedValueCount(acc, ab.values, v, stats) > 0) {
        aggregate.max = static_cast<Value>(v);
        break;
      }
    }
  } else {
    // Generic path: per-value fused counts (as in ExecuteGroupCount).
    const bool equality_direct =
        options_.encoding == BitmapEncoding::kEquality &&
        options_.missing_strategy != MissingStrategy::kAllOnes;
    for (uint32_t v = 1; v <= ab.cardinality; ++v) {
      uint64_t count = 0;
      if (equality_direct) {
        const WahBitVector& group = ab.values[v - 1];
        if (stats != nullptr) {
          ++stats->bitvectors_accessed;
          ++stats->bitvector_ops;
          stats->words_touched += acc.NumWords() + group.NumWords();
        }
        count = WahBitVector::AndCount(acc, group, op_scope.get());
      } else {
        INCDB_ASSIGN_OR_RETURN(
            WahBitVector group,
            EvaluateInterval(agg_attr,
                             {static_cast<Value>(v), static_cast<Value>(v)},
                             MissingSemantics::kNoMatch, stats));
        count = WahBitVector::AndCount(acc, group, op_scope.get());
        if (stats != nullptr) {
          ++stats->bitvector_ops;
          stats->words_touched += acc.NumWords() + group.NumWords();
        }
      }
      if (count == 0) continue;
      if (aggregate.count == 0) aggregate.min = static_cast<Value>(v);
      aggregate.max = static_cast<Value>(v);
      aggregate.count += count;
      aggregate.sum += count * v;
    }
    aggregate.missing_count = acc.Count() - aggregate.count;
  }

  if (aggregate.count > 0) {
    aggregate.mean = static_cast<double>(aggregate.sum) /
                     static_cast<double>(aggregate.count);
  }
  return aggregate;
}

Result<uint64_t> BitmapIndex::ExecuteCount(const RangeQuery& query,
                                           QueryStats* stats) const {
  INCDB_ASSIGN_OR_RETURN(std::vector<WahBitVector> terms,
                         EvaluateTerms(query, stats));
  // Fused count over the term conjunction: the AND result itself is never
  // materialized (for a single term this degenerates to Count()).
  if (stats != nullptr) stats->bitvector_ops += terms.size() - 1;
  WahStatsScope op_scope(stats);
  return WahBitVector::AndManyCount(Pointers(terms), op_scope.get());
}

Result<std::vector<uint64_t>> BitmapIndex::ExecuteGroupCount(
    const RangeQuery& query, size_t group_attr, QueryStats* stats) const {
  if (group_attr >= attributes_.size()) {
    return Status::OutOfRange("group attribute index " +
                              std::to_string(group_attr) + " out of range");
  }
  INCDB_ASSIGN_OR_RETURN(WahBitVector acc, ExecuteCompressed(query, stats));
  const AttributeBitmaps& ab = attributes_[group_attr];
  WahStatsScope op_scope(stats);
  std::vector<uint64_t> counts(ab.cardinality + 1, 0);
  uint64_t grouped = 0;
  // Every per-group count runs through a fused count kernel; no result
  // vector is ever materialized per group.
  const bool equality_direct =
      options_.encoding == BitmapEncoding::kEquality &&
      options_.missing_strategy != MissingStrategy::kAllOnes;
  for (uint32_t v = 1; v <= ab.cardinality; ++v) {
    if (equality_direct) {
      // "value == v" is the stored bitmap itself; count acc AND B_{i,v}
      // straight off index storage.
      const WahBitVector& group = ab.values[v - 1];
      if (stats != nullptr) {
        ++stats->bitvectors_accessed;
        ++stats->bitvector_ops;
        stats->words_touched += acc.NumWords() + group.NumWords();
      }
      counts[v] = WahBitVector::AndCount(acc, group, op_scope.get());
    } else if (options_.encoding == BitmapEncoding::kBitSliced) {
      counts[v] = FusedSlicedValueCount(acc, ab.values, v, stats);
    } else {
      // The per-value bitvector falls out of the interval evaluator for any
      // encoding: a no-match point query is exactly "value == v".
      INCDB_ASSIGN_OR_RETURN(
          WahBitVector group,
          EvaluateInterval(group_attr,
                           {static_cast<Value>(v), static_cast<Value>(v)},
                           MissingSemantics::kNoMatch, stats));
      counts[v] = WahBitVector::AndCount(acc, group, op_scope.get());
      if (stats != nullptr) {
        ++stats->bitvector_ops;
        stats->words_touched += acc.NumWords() + group.NumWords();
      }
    }
    grouped += counts[v];
  }
  // Missing-group bucket = matches not in any value group.
  counts[0] = acc.Count() - grouped;
  return counts;
}

Status BitmapIndex::AppendRow(const std::vector<Value>& row) {
  if (row.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, index has " +
        std::to_string(attributes_.size()) + " attributes");
  }
  for (size_t a = 0; a < row.size(); ++a) {
    const Value v = row[a];
    if (v != kMissingValue &&
        (v < 1 || static_cast<uint32_t>(v) > attributes_[a].cardinality)) {
      return Status::OutOfRange("attribute " + std::to_string(a) +
                                ": value " + std::to_string(v) +
                                " outside domain");
    }
    if (IsMissing(v) && attributes_[a].cardinality == 1 &&
        options_.missing_strategy == MissingStrategy::kAllOnes) {
      return Status::NotSupported(
          "kAllOnes cannot represent missing at cardinality 1 (paper §4.2)");
    }
  }
  for (size_t a = 0; a < row.size(); ++a) {
    AttributeBitmaps& ab = attributes_[a];
    const Value v = row[a];
    const bool missing = IsMissing(v);
    if (missing && !ab.missing.has_value() &&
        options_.missing_strategy == MissingStrategy::kExtraBitmap) {
      // First missing value for this attribute: materialize B_{i,0}.
      ab.missing = WahBitVector::Fill(num_rows_, false);
      ab.has_missing = true;
    }
    if (options_.encoding == BitmapEncoding::kEquality) {
      const bool missing_bit_everywhere =
          missing && options_.missing_strategy == MissingStrategy::kAllOnes;
      for (uint32_t j = 1; j <= ab.cardinality; ++j) {
        ab.values[j - 1].AppendBit(
            missing ? missing_bit_everywhere
                    : static_cast<uint32_t>(v) == j);
      }
    } else if (options_.encoding == BitmapEncoding::kRange) {
      // Range encoding: B_{i,j} = "value <= j"; missing rows are 1 in
      // every kept bitmap.
      for (uint32_t j = 1; j + 1 <= ab.cardinality; ++j) {
        ab.values[j - 1].AppendBit(missing ||
                                   static_cast<uint32_t>(v) <= j);
      }
    } else if (options_.encoding == BitmapEncoding::kInterval) {
      // Interval encoding: I_j = "value in [j, j+m-1]".
      const uint32_t m = IntervalEncodingM(ab.cardinality);
      for (uint32_t j = 1; j <= ab.values.size(); ++j) {
        ab.values[j - 1].AppendBit(!missing &&
                                   j <= static_cast<uint32_t>(v) &&
                                   static_cast<uint32_t>(v) <= j + m - 1);
      }
    } else {
      // Bit-sliced encoding: slice k holds bit k of the code (missing = 0).
      const uint32_t code = missing ? 0 : static_cast<uint32_t>(v);
      for (size_t k = 0; k < ab.values.size(); ++k) {
        ab.values[k].AppendBit((code >> k) & 1);
      }
    }
    if (ab.missing.has_value()) ab.missing->AppendBit(missing);
  }
  ++num_rows_;
  return Status::OK();
}

namespace {
constexpr char kBitmapMagic[] = "INCDBBM1";
}  // namespace

Status BitmapIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  BinaryWriter writer(out);
  writer.WriteString(kBitmapMagic);
  writer.WriteU8(static_cast<uint8_t>(options_.encoding));
  writer.WriteU8(static_cast<uint8_t>(options_.missing_strategy));
  writer.WriteU64(num_rows_);
  writer.WriteU64(attributes_.size());
  for (const AttributeBitmaps& ab : attributes_) {
    writer.WriteU32(ab.cardinality);
    writer.WriteU8(ab.missing.has_value() ? 1 : 0);
    if (ab.missing.has_value()) ab.missing->SaveTo(writer);
    writer.WriteU64(ab.values.size());
    for (const WahBitVector& bitmap : ab.values) bitmap.SaveTo(writer);
  }
  return writer.status();
}

Result<BitmapIndex> BitmapIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  BinaryReader reader(in);
  INCDB_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(64));
  if (magic != kBitmapMagic) {
    return Status::IOError("'" + path + "' is not an incdb bitmap index");
  }
  Options options;
  INCDB_ASSIGN_OR_RETURN(uint8_t encoding, reader.ReadU8());
  INCDB_ASSIGN_OR_RETURN(uint8_t strategy, reader.ReadU8());
  if (encoding > static_cast<uint8_t>(BitmapEncoding::kBitSliced) ||
      strategy > static_cast<uint8_t>(MissingStrategy::kAllZeros)) {
    return Status::IOError("'" + path + "': corrupted options");
  }
  options.encoding = static_cast<BitmapEncoding>(encoding);
  options.missing_strategy = static_cast<MissingStrategy>(strategy);
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, reader.ReadU64());
  if (num_attrs > (1u << 20)) {
    return Status::IOError("'" + path + "': implausible attribute count");
  }
  std::vector<AttributeBitmaps> attributes;
  attributes.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    AttributeBitmaps ab;
    INCDB_ASSIGN_OR_RETURN(ab.cardinality, reader.ReadU32());
    INCDB_ASSIGN_OR_RETURN(uint8_t has_missing, reader.ReadU8());
    if (has_missing != 0) {
      INCDB_ASSIGN_OR_RETURN(WahBitVector missing,
                             WahBitVector::LoadFrom(reader));
      if (missing.size() != num_rows) {
        return Status::IOError("'" + path + "': bitmap size mismatch");
      }
      ab.missing = std::move(missing);
      ab.has_missing = true;
    }
    INCDB_ASSIGN_OR_RETURN(uint64_t num_bitmaps, reader.ReadU64());
    if (num_bitmaps !=
        AxisEncoder::NumBitmaps(options.encoding, ab.cardinality)) {
      return Status::IOError("'" + path + "': bitmap count mismatch");
    }
    ab.values.reserve(num_bitmaps);
    for (uint64_t j = 0; j < num_bitmaps; ++j) {
      INCDB_ASSIGN_OR_RETURN(WahBitVector bitmap,
                             WahBitVector::LoadFrom(reader));
      if (bitmap.size() != num_rows) {
        return Status::IOError("'" + path + "': bitmap size mismatch");
      }
      ab.values.push_back(std::move(bitmap));
    }
    attributes.push_back(std::move(ab));
  }
  return BitmapIndex(options, num_rows, std::move(attributes));
}

Result<BitmapIndex> BitmapIndex::FromParts(
    Options options, uint64_t num_rows,
    std::vector<AttributeBitmaps> attributes) {
  if ((options.missing_strategy == MissingStrategy::kAllOnes ||
       options.missing_strategy == MissingStrategy::kAllZeros) &&
      options.encoding != BitmapEncoding::kEquality) {
    return Status::InvalidArgument(
        "bitmap parts: all-ones/all-zeros strategies are equality-only");
  }
  for (size_t a = 0; a < attributes.size(); ++a) {
    const AttributeBitmaps& ab = attributes[a];
    const uint64_t expected =
        AxisEncoder::NumBitmaps(options.encoding, ab.cardinality);
    if (ab.values.size() != expected) {
      return Status::IOError("bitmap parts: attribute " + std::to_string(a) +
                             " has " + std::to_string(ab.values.size()) +
                             " value bitmaps, encoding implies " +
                             std::to_string(expected));
    }
    if (ab.has_missing != ab.missing.has_value()) {
      return Status::IOError("bitmap parts: attribute " + std::to_string(a) +
                             " missing-bitmap flag mismatch");
    }
    if (ab.missing.has_value() && ab.missing->size() != num_rows) {
      return Status::IOError("bitmap parts: attribute " + std::to_string(a) +
                             " missing bitmap size mismatch");
    }
    for (const WahBitVector& bitmap : ab.values) {
      if (bitmap.size() != num_rows) {
        return Status::IOError("bitmap parts: attribute " + std::to_string(a) +
                               " bitmap size mismatch");
      }
    }
  }
  return BitmapIndex(options, num_rows, std::move(attributes));
}

uint64_t BitmapIndex::SizeInBytes() const {
  uint64_t total = 0;
  for (size_t a = 0; a < attributes_.size(); ++a) {
    total += AttributeSizeInBytes(a);
  }
  return total;
}

uint64_t BitmapIndex::AttributeSizeInBytes(size_t attr) const {
  const AttributeBitmaps& ab = attributes_[attr];
  uint64_t total = 0;
  for (const WahBitVector& bitmap : ab.values) total += bitmap.SizeInBytes();
  if (ab.missing.has_value()) total += ab.missing->SizeInBytes();
  return total;
}

size_t BitmapIndex::NumBitmaps(size_t attr) const {
  const AttributeBitmaps& ab = attributes_[attr];
  return ab.values.size() + (ab.missing.has_value() ? 1 : 0);
}

uint64_t BitmapIndex::VerbatimSizeInBytes() const {
  uint64_t total = 0;
  const uint64_t bytes_per_bitmap = bitutil::CeilDiv(num_rows_, 8);
  for (size_t a = 0; a < attributes_.size(); ++a) {
    total += NumBitmaps(a) * bytes_per_bitmap;
  }
  return total;
}

double BitmapIndex::CompressionRatio() const {
  const uint64_t verbatim = VerbatimSizeInBytes();
  if (verbatim == 0) return 0.0;
  return static_cast<double>(SizeInBytes()) / static_cast<double>(verbatim);
}

double BitmapIndex::AttributeCompressionRatio(size_t attr) const {
  const uint64_t verbatim =
      NumBitmaps(attr) * bitutil::CeilDiv(num_rows_, 8);
  if (verbatim == 0) return 0.0;
  return static_cast<double>(AttributeSizeInBytes(attr)) /
         static_cast<double>(verbatim);
}

}  // namespace incdb
