#include "bitmap/bitmap_index.h"

#include <algorithm>
#include <fstream>

#include "common/bitutil.h"
#include "common/io.h"
#include "common/logging.h"

namespace incdb {

namespace {

/// Incremental builder for one WAH bitvector: appends set bits at ascending
/// row positions, run-length-filling the gaps, so build cost is proportional
/// to the number of set bits rather than the number of rows.
class SetBitBuilder {
 public:
  void SetBitAt(uint64_t row) {
    INCDB_DCHECK(row >= appended_);
    bits_.AppendRun(false, row - appended_);
    bits_.AppendBit(true);
    appended_ = row + 1;
  }

  WahBitVector Finish(uint64_t num_rows) {
    bits_.AppendRun(false, num_rows - appended_);
    appended_ = num_rows;
    return std::move(bits_);
  }

 private:
  WahBitVector bits_;
  uint64_t appended_ = 0;
};

/// Adapts the fused WAH kernels' per-operation accounting (WahOpStats) into
/// the query counters: dense SIMD windows and decoded group words fold into
/// QueryStats at scope exit. get() is null when no stats were requested, so
/// the kernels skip the bookkeeping entirely.
class WahStatsScope {
 public:
  explicit WahStatsScope(QueryStats* stats) : stats_(stats) {}
  ~WahStatsScope() {
    if (stats_ != nullptr) {
      stats_->simd_path += op_stats_.dense_windows;
      stats_->words_decoded += op_stats_.words_decoded;
    }
  }
  WahStatsScope(const WahStatsScope&) = delete;
  WahStatsScope& operator=(const WahStatsScope&) = delete;

  WahOpStats* get() { return stats_ != nullptr ? &op_stats_ : nullptr; }

 private:
  QueryStats* stats_;
  WahOpStats op_stats_;
};

}  // namespace

std::string_view BitmapEncodingToString(BitmapEncoding encoding) {
  switch (encoding) {
    case BitmapEncoding::kEquality:
      return "BEE";
    case BitmapEncoding::kRange:
      return "BRE";
    case BitmapEncoding::kInterval:
      return "BIE";
    case BitmapEncoding::kBitSliced:
      return "BSL";
  }
  return "unknown";
}

namespace {

// Interval-encoding geometry: bitmap I_j covers values [j, j+m-1] with
// m = ceil(C/2); n = C-m+1 bitmaps are stored.
uint32_t IntervalEncodingM(uint32_t cardinality) {
  return (cardinality + 1) / 2;
}
uint32_t IntervalEncodingN(uint32_t cardinality) {
  return cardinality - IntervalEncodingM(cardinality) + 1;
}

}  // namespace

Result<BitmapIndex> BitmapIndex::Build(const Table& table, Options options) {
  if (table.num_rows() == 0) {
    return Status::InvalidArgument("cannot build a bitmap index on an empty table");
  }
  if (options.missing_strategy != MissingStrategy::kExtraBitmap &&
      options.encoding != BitmapEncoding::kEquality) {
    return Status::NotSupported(
        "kAllOnes/kAllZeros missing strategies apply to equality encoding only");
  }

  const uint64_t n = table.num_rows();
  std::vector<AttributeBitmaps> attributes;
  attributes.reserve(table.num_attributes());

  for (size_t a = 0; a < table.num_attributes(); ++a) {
    const Column& column = table.column(a);
    const uint32_t cardinality = column.cardinality();
    AttributeBitmaps ab;
    ab.cardinality = cardinality;
    ab.has_missing = column.MissingCount() > 0;

    if (options.missing_strategy == MissingStrategy::kAllOnes &&
        ab.has_missing && cardinality == 1) {
      return Status::NotSupported(
          "attribute '" + table.schema().attribute(a).name +
          "': kAllOnes cannot distinguish missing from the single value when "
          "cardinality is 1 (paper §4.2)");
    }

    if (options.encoding == BitmapEncoding::kBitSliced) {
      // Binary-encode each value into b slice bitmaps; missing rows carry
      // the reserved all-zeros code (absent from every slice).
      const int num_slices = bitutil::BitsForCardinality(cardinality);
      std::vector<SetBitBuilder> builders(static_cast<size_t>(num_slices));
      SetBitBuilder sliced_missing;
      for (uint64_t r = 0; r < n; ++r) {
        const Value v = column.Get(r);
        if (IsMissing(v)) {
          sliced_missing.SetBitAt(r);
          continue;
        }
        for (uint32_t code = static_cast<uint32_t>(v); code != 0;
             code &= code - 1) {
          builders[static_cast<size_t>(bitutil::CountTrailingZeros(code))]
              .SetBitAt(r);
        }
      }
      ab.values.reserve(static_cast<size_t>(num_slices));
      for (int k = 0; k < num_slices; ++k) {
        ab.values.push_back(builders[static_cast<size_t>(k)].Finish(n));
      }
      if (ab.has_missing) ab.missing = sliced_missing.Finish(n);
      attributes.push_back(std::move(ab));
      continue;
    }

    if (options.encoding == BitmapEncoding::kInterval) {
      // Each value v belongs to I_j for j in [v-m+1, v] (clamped); build
      // all n window bitmaps in one pass.
      const uint32_t m = IntervalEncodingM(cardinality);
      const uint32_t n_bitmaps = IntervalEncodingN(cardinality);
      std::vector<SetBitBuilder> builders(n_bitmaps);
      SetBitBuilder interval_missing;
      for (uint64_t r = 0; r < n; ++r) {
        const Value v = column.Get(r);
        if (IsMissing(v)) {
          interval_missing.SetBitAt(r);
          continue;
        }
        const uint32_t value = static_cast<uint32_t>(v);
        const uint32_t first = value >= m ? value - m + 1 : 1;
        const uint32_t last = std::min(n_bitmaps, value);
        for (uint32_t j = first; j <= last; ++j) builders[j - 1].SetBitAt(r);
      }
      ab.values.reserve(n_bitmaps);
      for (uint32_t j = 0; j < n_bitmaps; ++j) {
        ab.values.push_back(builders[j].Finish(n));
      }
      if (ab.has_missing) ab.missing = interval_missing.Finish(n);
      attributes.push_back(std::move(ab));
      continue;
    }

    // Equality bitmaps first (also the scaffold for range encoding).
    std::vector<SetBitBuilder> value_builders(cardinality);
    SetBitBuilder missing_builder;
    for (uint64_t r = 0; r < n; ++r) {
      const Value v = column.Get(r);
      if (IsMissing(v)) {
        switch (options.missing_strategy) {
          case MissingStrategy::kExtraBitmap:
            missing_builder.SetBitAt(r);
            break;
          case MissingStrategy::kAllOnes:
            for (auto& builder : value_builders) builder.SetBitAt(r);
            break;
          case MissingStrategy::kAllZeros:
            break;  // absent from every bitmap
        }
      } else {
        value_builders[static_cast<size_t>(v) - 1].SetBitAt(r);
      }
    }

    std::vector<WahBitVector> equality(cardinality);
    for (uint32_t j = 0; j < cardinality; ++j) {
      equality[j] = value_builders[j].Finish(n);
    }
    std::optional<WahBitVector> missing;
    if (ab.has_missing &&
        options.missing_strategy == MissingStrategy::kExtraBitmap) {
      missing = missing_builder.Finish(n);
    }

    if (options.encoding == BitmapEncoding::kEquality) {
      ab.values = std::move(equality);
      ab.missing = std::move(missing);
    } else {
      // Range encoding: B_{i,j} = "value <= j", built as a running OR over
      // the equality bitmaps. Missing counts as value 0, so the running OR
      // starts from the missing bitmap and missing rows are 1 everywhere.
      // The all-ones top bitmap B_{i,C} is dropped (paper §4.3).
      ab.values.reserve(cardinality > 0 ? cardinality - 1 : 0);
      WahBitVector running = missing.has_value()
                                 ? *missing
                                 : WahBitVector::Fill(n, false);
      for (uint32_t j = 1; j <= cardinality - 1; ++j) {
        running = running.Or(equality[j - 1]);
        ab.values.push_back(running);
      }
      ab.missing = std::move(missing);
    }
    attributes.push_back(std::move(ab));
  }
  return BitmapIndex(options, n, std::move(attributes));
}

std::string BitmapIndex::Name() const {
  std::string name(BitmapEncodingToString(options_.encoding));
  name += "-WAH";
  switch (options_.missing_strategy) {
    case MissingStrategy::kExtraBitmap:
      break;
    case MissingStrategy::kAllOnes:
      name += "(all-ones)";
      break;
    case MissingStrategy::kAllZeros:
      name += "(all-zeros)";
      break;
  }
  return name;
}

Result<WahBitVector> BitmapIndex::EvaluateInterval(size_t attr,
                                                   Interval interval,
                                                   MissingSemantics semantics,
                                                   QueryStats* stats) const {
  if (attr >= attributes_.size()) {
    return Status::OutOfRange("attribute index " + std::to_string(attr) +
                              " out of range");
  }
  const AttributeBitmaps& ab = attributes_[attr];
  if (interval.lo < 1 ||
      interval.hi > static_cast<Value>(ab.cardinality) ||
      interval.lo > interval.hi) {
    return Status::InvalidArgument("interval [" + std::to_string(interval.lo) +
                                   "," + std::to_string(interval.hi) +
                                   "] invalid for cardinality " +
                                   std::to_string(ab.cardinality));
  }
  if (options_.missing_strategy == MissingStrategy::kAllOnes &&
      semantics != MissingSemantics::kMatch) {
    return Status::NotSupported(
        "kAllOnes encodes missing as a universal match; it cannot answer "
        "missing-not-match queries (paper §4.2)");
  }
  if (options_.missing_strategy == MissingStrategy::kAllZeros &&
      semantics != MissingSemantics::kNoMatch) {
    return Status::NotSupported(
        "kAllZeros erases missing rows; it cannot answer missing-is-match "
        "queries (paper §4.2)");
  }
  switch (options_.encoding) {
    case BitmapEncoding::kEquality:
      return EvaluateEquality(ab, interval, semantics, stats);
    case BitmapEncoding::kRange:
      return EvaluateRange(ab, interval, semantics, stats);
    case BitmapEncoding::kInterval:
      return EvaluateIntervalEncoded(ab, interval, semantics, stats);
    case BitmapEncoding::kBitSliced:
      return EvaluateBitSliced(ab, interval, semantics, stats);
  }
  return Status::Internal("unknown encoding");
}

WahBitVector BitmapIndex::EvaluateIntervalEncoded(
    const AttributeBitmaps& ab, Interval interval, MissingSemantics semantics,
    QueryStats* stats) const {
  // Two-bitmap evaluation rules for the interval encoding, derived from
  // I_j = [j, j+m-1], m = ceil(C/2), n = C-m+1 stored bitmaps. For a query
  // [l, h] of width w = h-l+1:
  //   w == C             -> all ones (no bitmap touched)
  //   w == m             -> I_l
  //   w  > m             -> I_l OR I_{h-m+1}        ([l,l+m-1] ∪ [h-m+1,h],
  //                         contiguous because w <= C <= 2m)
  //   w  < m and h < m   -> I_l AND NOT I_{h+1}     (bottom corner)
  //   w  < m and l > n   -> I_{h-m+1} AND NOT I_{l-m}  (top corner)
  //   w  < m otherwise   -> I_l AND I_{h-m+1}       (window intersection)
  // Missing rows are 0 in every I_j, so: match semantics ORs in B_{i,0};
  // no-match gets correct results for free (the full-domain case excepted,
  // which needs NOT B_{i,0}).
  const Value cardinality = static_cast<Value>(ab.cardinality);
  const Value m = static_cast<Value>(IntervalEncodingM(ab.cardinality));
  const Value n = static_cast<Value>(IntervalEncodingN(ab.cardinality));
  const Value lo = interval.lo;
  const Value hi = interval.hi;
  const Value width = hi - lo + 1;
  auto bitmap = [&](Value j) -> const WahBitVector& {
    INCDB_DCHECK(j >= 1 && j <= n);
    const WahBitVector& vec = ab.values[static_cast<size_t>(j) - 1];
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += vec.NumWords();
    }
    return vec;
  };
  auto missing_bitmap = [&]() -> const WahBitVector& {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += ab.missing->NumWords();
    }
    return *ab.missing;
  };
  auto count_op = [&]() {
    if (stats != nullptr) ++stats->bitvector_ops;
  };
  const bool or_in_missing =
      semantics == MissingSemantics::kMatch && ab.missing.has_value();

  if (width == cardinality) {
    if (semantics == MissingSemantics::kMatch || !ab.missing.has_value()) {
      return WahBitVector::Fill(num_rows_, true);
    }
    count_op();
    return missing_bitmap().Not();
  }

  // The union-shaped cases fuse every operand (including B_{i,0} under
  // match semantics) into one OrMany pass.
  if (width >= m) {
    std::vector<const WahBitVector*> ops;
    ops.push_back(&bitmap(lo));
    if (width > m) ops.push_back(&bitmap(hi - m + 1));
    if (or_in_missing) ops.push_back(&missing_bitmap());
    if (stats != nullptr) stats->bitvector_ops += ops.size() - 1;
    WahStatsScope op_scope(stats);
    return WahBitVector::OrMany(ops, op_scope.get());
  }

  WahBitVector result;
  if (hi < m) {
    result = bitmap(lo).AndNot(bitmap(hi + 1));
    count_op();
  } else if (lo > n) {
    result = bitmap(hi - m + 1).AndNot(bitmap(lo - m));
    count_op();
  } else {
    result = bitmap(lo).And(bitmap(hi - m + 1));
    count_op();
  }
  if (or_in_missing) {
    result = result.Or(missing_bitmap());
    count_op();
  }
  return result;
}

WahBitVector BitmapIndex::EvaluateEquality(const AttributeBitmaps& ab,
                                           Interval interval,
                                           MissingSemantics semantics,
                                           QueryStats* stats) const {
  const uint32_t cardinality = ab.cardinality;
  const Value lo = interval.lo;
  const Value hi = interval.hi;
  auto access = [&](const WahBitVector& bitmap) -> const WahBitVector* {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += bitmap.NumWords();
    }
    return &bitmap;
  };
  // Collects B_{i,from} .. B_{i,to} as operands for one fused OrMany.
  auto collect = [&](std::vector<const WahBitVector*>& ops, Value from,
                     Value to) {
    for (Value j = from; j <= to; ++j) {
      ops.push_back(access(ab.values[static_cast<size_t>(j) - 1]));
    }
  };
  // Single-pass k-way union; zero fill when there is nothing to unite.
  auto fused_or = [&](const std::vector<const WahBitVector*>& ops)
      -> WahBitVector {
    if (ops.empty()) return WahBitVector::Fill(num_rows_, false);
    if (stats != nullptr) stats->bitvector_ops += ops.size() - 1;
    WahStatsScope op_scope(stats);
    return WahBitVector::OrMany(ops, op_scope.get());
  };

  // Paper Fig. 2: use the direct OR when the interval covers at most half
  // the domain, otherwise complement the OR of the outside bitmaps. We pick
  // the side with fewer bitmaps, which realizes the paper's worst-case
  // bound of min(AS, 1-AS) * C + 1 bitvector accesses. Either side is one
  // fused OrMany pass instead of a pairwise fold.
  const Value width = hi - lo + 1;
  const bool narrow = width <= static_cast<Value>(cardinality) - width;
  std::vector<const WahBitVector*> ops;
  ops.reserve(static_cast<size_t>(
      (narrow ? width : static_cast<Value>(cardinality) - width) + 1));

  if (options_.missing_strategy == MissingStrategy::kAllZeros) {
    // Rejected alternative: missing rows appear in no bitmap, so the
    // complement path would resurrect them; every interval must be answered
    // by the direct OR (the performance drawback the ablation shows).
    collect(ops, lo, hi);
    return fused_or(ops);
  }

  if (options_.missing_strategy == MissingStrategy::kAllOnes) {
    // Rejected alternative (match semantics only): missing rows are 1 in
    // every bitmap, so the direct OR already includes them; the complement
    // path must recover them by ANDing two value bitmaps (only missing rows
    // are set in more than one).
    if (narrow) {
      collect(ops, lo, hi);
      return fused_or(ops);
    }
    collect(ops, 1, lo - 1);
    collect(ops, hi + 1, static_cast<Value>(cardinality));
    WahBitVector result = fused_or(ops).Not();
    if (stats != nullptr) ++stats->bitvector_ops;
    if (cardinality >= 2) {
      WahBitVector missing_rows =
          access(ab.values[0])->And(*access(ab.values[1]));
      result = result.Or(missing_rows);
      if (stats != nullptr) stats->bitvector_ops += 2;
    }
    return result;
  }

  // kExtraBitmap — the paper's design (Fig. 2).
  if (narrow) {
    // One fused pass over the inside bitmaps plus B_{i,0} when missing rows
    // count as matches.
    collect(ops, lo, hi);
    if (semantics == MissingSemantics::kMatch && ab.missing.has_value()) {
      ops.push_back(access(*ab.missing));
    }
    return fused_or(ops);
  }
  collect(ops, 1, lo - 1);
  collect(ops, hi + 1, static_cast<Value>(cardinality));
  if (semantics == MissingSemantics::kNoMatch && ab.missing.has_value()) {
    // NOT(outside OR B_0): the complement alone would admit missing rows.
    ops.push_back(access(*ab.missing));
  }
  WahBitVector result = fused_or(ops).Not();
  if (stats != nullptr) ++stats->bitvector_ops;
  return result;
}

BitmapIndex::BitmapRef BitmapIndex::RangeLE(const AttributeBitmaps& ab,
                                            Value j,
                                            QueryStats* stats) const {
  auto borrow = [&](const WahBitVector& vec) -> BitmapRef {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += vec.NumWords();
    }
    return BitmapRef{std::nullopt, &vec};
  };
  if (j <= 0) {
    // "value <= 0" = the missing rows (missing is encoded as value 0).
    if (ab.missing.has_value()) return borrow(*ab.missing);
    return BitmapRef{WahBitVector::Fill(num_rows_, false), nullptr};
  }
  if (static_cast<uint32_t>(j) >= ab.cardinality) {
    // The dropped all-ones B_C.
    return BitmapRef{WahBitVector::Fill(num_rows_, true), nullptr};
  }
  return borrow(ab.values[static_cast<size_t>(j) - 1]);
}

WahBitVector BitmapIndex::EvaluateRange(const AttributeBitmaps& ab,
                                        Interval interval,
                                        MissingSemantics semantics,
                                        QueryStats* stats) const {
  const Value cardinality = static_cast<Value>(ab.cardinality);
  const Value lo = interval.lo;
  const Value hi = interval.hi;
  auto count_op = [&](int n = 1) {
    if (stats != nullptr) stats->bitvector_ops += static_cast<uint64_t>(n);
  };
  auto access_missing = [&]() -> const WahBitVector& {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += ab.missing->NumWords();
    }
    return *ab.missing;
  };
  auto or_missing = [&](WahBitVector r) -> WahBitVector {
    if (ab.missing.has_value()) {
      count_op();
      return r.Or(access_missing());
    }
    return r;
  };
  auto xor_missing = [&](WahBitVector r) -> WahBitVector {
    if (ab.missing.has_value()) {
      count_op();
      return r.Xor(access_missing());
    }
    return r;
  };

  if (semantics == MissingSemantics::kMatch) {
    // Paper Fig. 3(a).
    if (cardinality == 1) return WahBitVector::Fill(num_rows_, true);
    if (lo == hi) {
      if (lo == 1) return RangeLE(ab, 1, stats).get();
      if (lo == cardinality) {
        count_op();
        return or_missing(RangeLE(ab, lo - 1, stats).get().Not());
      }
      count_op();
      return or_missing(
          RangeLE(ab, lo, stats).get().Xor(RangeLE(ab, lo - 1, stats).get()));
    }
    if (lo == 1 && hi == cardinality) {
      return WahBitVector::Fill(num_rows_, true);
    }
    if (lo == 1) return RangeLE(ab, hi, stats).get();
    if (hi == cardinality) {
      count_op();
      return or_missing(RangeLE(ab, lo - 1, stats).get().Not());
    }
    count_op();
    return or_missing(
        RangeLE(ab, hi, stats).get().Xor(RangeLE(ab, lo - 1, stats).get()));
  }

  // Paper Fig. 3(b) — missing is not a match.
  if (cardinality == 1) {
    if (ab.missing.has_value()) {
      count_op();
      return access_missing().Not();
    }
    return WahBitVector::Fill(num_rows_, true);
  }
  if (lo == hi) {
    if (lo == 1) return xor_missing(RangeLE(ab, 1, stats).get());
    if (lo == cardinality) {
      count_op();
      return RangeLE(ab, lo - 1, stats).get().Not();
    }
    count_op();
    return RangeLE(ab, lo, stats).get().Xor(RangeLE(ab, lo - 1, stats).get());
  }
  if (lo == 1 && hi == cardinality) {
    if (ab.missing.has_value()) {
      count_op();
      return access_missing().Not();
    }
    return WahBitVector::Fill(num_rows_, true);
  }
  if (lo == 1) return xor_missing(RangeLE(ab, hi, stats).get());
  if (hi == cardinality) {
    count_op();
    return RangeLE(ab, lo - 1, stats).get().Not();
  }
  count_op();
  return RangeLE(ab, hi, stats).get().Xor(RangeLE(ab, lo - 1, stats).get());
}

WahBitVector BitmapIndex::EvaluateBitSliced(const AttributeBitmaps& ab,
                                            Interval interval,
                                            MissingSemantics semantics,
                                            QueryStats* stats) const {
  // O'Neil-Quass bit-sliced evaluation over the compressed slices.
  // Codes: missing = 0, value v = v; slices S_0..S_{b-1} (LSB first).
  //
  //   EQ(v): running AND of S_k (bit set) / AND-NOT S_k (bit clear).
  //   LE(v): the classic circuit — walk slices MSB→LSB keeping
  //          BLT (certainly less) and BEQ (equal so far):
  //            bit k of v set:   BLT |= BEQ & ~S_k;  BEQ &= S_k
  //            bit k of v clear: BEQ &= ~S_k
  //          LE = BLT | BEQ.
  //   [lo, hi]: LE(hi) AND NOT (lo == 1 ? B_0 : LE(lo-1)) — code 0
  //   (missing) is below every value, so the subtraction also strips
  //   missing rows; match semantics then OR B_0 back in.
  const Value cardinality = static_cast<Value>(ab.cardinality);
  const Value lo = interval.lo;
  const Value hi = interval.hi;
  const int num_slices = static_cast<int>(ab.values.size());
  auto slice = [&](int k) -> const WahBitVector& {
    const WahBitVector& vec = ab.values[static_cast<size_t>(k)];
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += vec.NumWords();
    }
    return vec;
  };
  auto count_op = [&](int n = 1) {
    if (stats != nullptr) stats->bitvector_ops += static_cast<uint64_t>(n);
  };
  auto equals = [&](Value v) -> WahBitVector {
    // One fused pass of AND_k (bit k set ? S_k : NOT S_k) — the per-operand
    // complement never materializes NOT S_k.
    std::vector<WahBitVector::Operand> ops;
    ops.reserve(static_cast<size_t>(num_slices));
    for (int k = num_slices - 1; k >= 0; --k) {
      ops.push_back({&slice(k), ((v >> k) & 1) == 0});
    }
    count_op(num_slices);
    WahStatsScope op_scope(stats);
    return WahBitVector::AndMany(std::span<const WahBitVector::Operand>(ops),
                                 op_scope.get());
  };
  auto less_equal = [&](Value v) -> WahBitVector {
    WahBitVector blt = WahBitVector::Fill(num_rows_, false);
    WahBitVector beq = WahBitVector::Fill(num_rows_, true);
    for (int k = num_slices - 1; k >= 0; --k) {
      const WahBitVector& sk = slice(k);
      if ((v >> k) & 1) {
        blt = blt.Or(beq.AndNot(sk));
        beq = beq.And(sk);
        count_op(3);
      } else {
        beq = beq.AndNot(sk);
        count_op();
      }
    }
    count_op();
    return blt.Or(beq);
  };
  auto missing_rows = [&]() -> WahBitVector {
    if (!ab.missing.has_value()) return WahBitVector::Fill(num_rows_, false);
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += ab.missing->NumWords();
    }
    return *ab.missing;
  };

  WahBitVector base;
  if (lo == hi) {
    base = equals(lo);  // code lo >= 1, so missing (code 0) is excluded
  } else {
    WahBitVector le_hi = hi == cardinality
                             ? WahBitVector::Fill(num_rows_, true)
                             : less_equal(hi);
    // Subtract codes <= lo-1; LE(0) is exactly the missing rows.
    WahBitVector below = lo == 1 ? missing_rows() : less_equal(lo - 1);
    base = le_hi.AndNot(below);
    count_op();
  }
  if (semantics == MissingSemantics::kMatch && ab.missing.has_value()) {
    if (stats != nullptr) {
      ++stats->bitvectors_accessed;
      stats->words_touched += ab.missing->NumWords();
    }
    base = base.Or(*ab.missing);
    count_op();
  }
  return base;
}

Result<std::vector<WahBitVector>> BitmapIndex::EvaluateTerms(
    const RangeQuery& query, QueryStats* stats) const {
  if (query.terms.empty()) {
    return Status::InvalidArgument("query must have at least one term");
  }
  std::vector<WahBitVector> terms;
  terms.reserve(query.terms.size());
  for (const QueryTerm& term : query.terms) {
    INCDB_ASSIGN_OR_RETURN(
        WahBitVector term_result,
        EvaluateInterval(term.attribute, term.interval, query.semantics,
                         stats));
    terms.push_back(std::move(term_result));
  }
  return terms;
}

namespace {

std::vector<const WahBitVector*> Pointers(
    const std::vector<WahBitVector>& vecs) {
  std::vector<const WahBitVector*> ptrs;
  ptrs.reserve(vecs.size());
  for (const WahBitVector& vec : vecs) ptrs.push_back(&vec);
  return ptrs;
}

// Bit-sliced "count of rows matching `query result` AND value == v": one
// fused AndManyCount over the accumulator and the (optionally complemented)
// slices — neither the equality bitvector nor the conjunction is ever
// materialized.
uint64_t FusedSlicedValueCount(const WahBitVector& acc,
                               const std::vector<WahBitVector>& slices,
                               uint32_t v, QueryStats* stats) {
  std::vector<WahBitVector::Operand> ops;
  ops.reserve(slices.size() + 1);
  ops.push_back({&acc, false});
  for (size_t k = 0; k < slices.size(); ++k) {
    ops.push_back({&slices[k], ((v >> k) & 1) == 0});
  }
  if (stats != nullptr) {
    stats->bitvectors_accessed += slices.size();
    stats->bitvector_ops += slices.size();
    stats->words_touched += acc.NumWords();
    for (const WahBitVector& s : slices) stats->words_touched += s.NumWords();
  }
  WahStatsScope op_scope(stats);
  return WahBitVector::AndManyCount(
      std::span<const WahBitVector::Operand>(ops), op_scope.get());
}

}  // namespace

Result<WahBitVector> BitmapIndex::ExecuteCompressed(const RangeQuery& query,
                                                    QueryStats* stats) const {
  INCDB_ASSIGN_OR_RETURN(std::vector<WahBitVector> terms,
                         EvaluateTerms(query, stats));
  if (terms.size() == 1) return std::move(terms.front());
  // Cross-attribute conjunction as one fused k-way AND.
  if (stats != nullptr) stats->bitvector_ops += terms.size() - 1;
  WahStatsScope op_scope(stats);
  return WahBitVector::AndMany(Pointers(terms), op_scope.get());
}

Result<BitVector> BitmapIndex::Execute(const RangeQuery& query,
                                       QueryStats* stats) const {
  INCDB_ASSIGN_OR_RETURN(WahBitVector acc, ExecuteCompressed(query, stats));
  return acc.Decompress();
}

Result<BitmapIndex::Aggregate> BitmapIndex::ExecuteAggregate(
    const RangeQuery& query, size_t agg_attr, QueryStats* stats) const {
  if (agg_attr >= attributes_.size()) {
    return Status::OutOfRange("aggregate attribute index " +
                              std::to_string(agg_attr) + " out of range");
  }
  INCDB_ASSIGN_OR_RETURN(WahBitVector acc, ExecuteCompressed(query, stats));
  const AttributeBitmaps& ab = attributes_[agg_attr];
  Aggregate aggregate;
  WahStatsScope op_scope(stats);

  if (options_.encoding == BitmapEncoding::kBitSliced) {
    // Bit-sliced fast path: SUM = Σ_k 2^k * |acc ∧ S_k|; COUNT = matching
    // rows that appear in at least one slice... cheaper: total matches
    // minus the missing ones (code 0 is absent from every slice, but so is
    // no real value, since values start at 1 and always have some bit set).
    // Every popcount runs through the fused AndCount kernel.
    for (size_t k = 0; k < ab.values.size(); ++k) {
      if (stats != nullptr) {
        ++stats->bitvectors_accessed;
        ++stats->bitvector_ops;
        stats->words_touched += acc.NumWords() + ab.values[k].NumWords();
      }
      aggregate.sum += (uint64_t{1} << k) *
                       WahBitVector::AndCount(acc, ab.values[k],
                                              op_scope.get());
    }
    if (ab.missing.has_value()) {
      if (stats != nullptr) {
        ++stats->bitvectors_accessed;
        ++stats->bitvector_ops;
        stats->words_touched += acc.NumWords() + ab.missing->NumWords();
      }
      aggregate.missing_count =
          WahBitVector::AndCount(acc, *ab.missing, op_scope.get());
    }
    aggregate.count = acc.Count() - aggregate.missing_count;
    // Min/max still need the per-value walk (early-exit from each end);
    // each probe is one fused count over acc and the slices.
    for (uint32_t v = 1; v <= ab.cardinality && aggregate.count > 0; ++v) {
      if (FusedSlicedValueCount(acc, ab.values, v, stats) > 0) {
        aggregate.min = static_cast<Value>(v);
        break;
      }
    }
    for (uint32_t v = ab.cardinality; v >= 1 && aggregate.count > 0; --v) {
      if (FusedSlicedValueCount(acc, ab.values, v, stats) > 0) {
        aggregate.max = static_cast<Value>(v);
        break;
      }
    }
  } else {
    // Generic path: per-value fused counts (as in ExecuteGroupCount).
    const bool equality_direct =
        options_.encoding == BitmapEncoding::kEquality &&
        options_.missing_strategy != MissingStrategy::kAllOnes;
    for (uint32_t v = 1; v <= ab.cardinality; ++v) {
      uint64_t count = 0;
      if (equality_direct) {
        const WahBitVector& group = ab.values[v - 1];
        if (stats != nullptr) {
          ++stats->bitvectors_accessed;
          ++stats->bitvector_ops;
          stats->words_touched += acc.NumWords() + group.NumWords();
        }
        count = WahBitVector::AndCount(acc, group, op_scope.get());
      } else {
        INCDB_ASSIGN_OR_RETURN(
            WahBitVector group,
            EvaluateInterval(agg_attr,
                             {static_cast<Value>(v), static_cast<Value>(v)},
                             MissingSemantics::kNoMatch, stats));
        count = WahBitVector::AndCount(acc, group, op_scope.get());
        if (stats != nullptr) {
          ++stats->bitvector_ops;
          stats->words_touched += acc.NumWords() + group.NumWords();
        }
      }
      if (count == 0) continue;
      if (aggregate.count == 0) aggregate.min = static_cast<Value>(v);
      aggregate.max = static_cast<Value>(v);
      aggregate.count += count;
      aggregate.sum += count * v;
    }
    aggregate.missing_count = acc.Count() - aggregate.count;
  }

  if (aggregate.count > 0) {
    aggregate.mean = static_cast<double>(aggregate.sum) /
                     static_cast<double>(aggregate.count);
  }
  return aggregate;
}

Result<uint64_t> BitmapIndex::ExecuteCount(const RangeQuery& query,
                                           QueryStats* stats) const {
  INCDB_ASSIGN_OR_RETURN(std::vector<WahBitVector> terms,
                         EvaluateTerms(query, stats));
  // Fused count over the term conjunction: the AND result itself is never
  // materialized (for a single term this degenerates to Count()).
  if (stats != nullptr) stats->bitvector_ops += terms.size() - 1;
  WahStatsScope op_scope(stats);
  return WahBitVector::AndManyCount(Pointers(terms), op_scope.get());
}

Result<std::vector<uint64_t>> BitmapIndex::ExecuteGroupCount(
    const RangeQuery& query, size_t group_attr, QueryStats* stats) const {
  if (group_attr >= attributes_.size()) {
    return Status::OutOfRange("group attribute index " +
                              std::to_string(group_attr) + " out of range");
  }
  INCDB_ASSIGN_OR_RETURN(WahBitVector acc, ExecuteCompressed(query, stats));
  const AttributeBitmaps& ab = attributes_[group_attr];
  WahStatsScope op_scope(stats);
  std::vector<uint64_t> counts(ab.cardinality + 1, 0);
  uint64_t grouped = 0;
  // Every per-group count runs through a fused count kernel; no result
  // vector is ever materialized per group.
  const bool equality_direct =
      options_.encoding == BitmapEncoding::kEquality &&
      options_.missing_strategy != MissingStrategy::kAllOnes;
  for (uint32_t v = 1; v <= ab.cardinality; ++v) {
    if (equality_direct) {
      // "value == v" is the stored bitmap itself; count acc AND B_{i,v}
      // straight off index storage.
      const WahBitVector& group = ab.values[v - 1];
      if (stats != nullptr) {
        ++stats->bitvectors_accessed;
        ++stats->bitvector_ops;
        stats->words_touched += acc.NumWords() + group.NumWords();
      }
      counts[v] = WahBitVector::AndCount(acc, group, op_scope.get());
    } else if (options_.encoding == BitmapEncoding::kBitSliced) {
      counts[v] = FusedSlicedValueCount(acc, ab.values, v, stats);
    } else {
      // The per-value bitvector falls out of the interval evaluator for any
      // encoding: a no-match point query is exactly "value == v".
      INCDB_ASSIGN_OR_RETURN(
          WahBitVector group,
          EvaluateInterval(group_attr,
                           {static_cast<Value>(v), static_cast<Value>(v)},
                           MissingSemantics::kNoMatch, stats));
      counts[v] = WahBitVector::AndCount(acc, group, op_scope.get());
      if (stats != nullptr) {
        ++stats->bitvector_ops;
        stats->words_touched += acc.NumWords() + group.NumWords();
      }
    }
    grouped += counts[v];
  }
  // Missing-group bucket = matches not in any value group.
  counts[0] = acc.Count() - grouped;
  return counts;
}

Status BitmapIndex::AppendRow(const std::vector<Value>& row) {
  if (row.size() != attributes_.size()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, index has " +
        std::to_string(attributes_.size()) + " attributes");
  }
  for (size_t a = 0; a < row.size(); ++a) {
    const Value v = row[a];
    if (v != kMissingValue &&
        (v < 1 || static_cast<uint32_t>(v) > attributes_[a].cardinality)) {
      return Status::OutOfRange("attribute " + std::to_string(a) +
                                ": value " + std::to_string(v) +
                                " outside domain");
    }
    if (IsMissing(v) && attributes_[a].cardinality == 1 &&
        options_.missing_strategy == MissingStrategy::kAllOnes) {
      return Status::NotSupported(
          "kAllOnes cannot represent missing at cardinality 1 (paper §4.2)");
    }
  }
  for (size_t a = 0; a < row.size(); ++a) {
    AttributeBitmaps& ab = attributes_[a];
    const Value v = row[a];
    const bool missing = IsMissing(v);
    if (missing && !ab.missing.has_value() &&
        options_.missing_strategy == MissingStrategy::kExtraBitmap) {
      // First missing value for this attribute: materialize B_{i,0}.
      ab.missing = WahBitVector::Fill(num_rows_, false);
      ab.has_missing = true;
    }
    if (options_.encoding == BitmapEncoding::kEquality) {
      const bool missing_bit_everywhere =
          missing && options_.missing_strategy == MissingStrategy::kAllOnes;
      for (uint32_t j = 1; j <= ab.cardinality; ++j) {
        ab.values[j - 1].AppendBit(
            missing ? missing_bit_everywhere
                    : static_cast<uint32_t>(v) == j);
      }
    } else if (options_.encoding == BitmapEncoding::kRange) {
      // Range encoding: B_{i,j} = "value <= j"; missing rows are 1 in
      // every kept bitmap.
      for (uint32_t j = 1; j + 1 <= ab.cardinality; ++j) {
        ab.values[j - 1].AppendBit(missing ||
                                   static_cast<uint32_t>(v) <= j);
      }
    } else if (options_.encoding == BitmapEncoding::kInterval) {
      // Interval encoding: I_j = "value in [j, j+m-1]".
      const uint32_t m = IntervalEncodingM(ab.cardinality);
      for (uint32_t j = 1; j <= ab.values.size(); ++j) {
        ab.values[j - 1].AppendBit(!missing &&
                                   j <= static_cast<uint32_t>(v) &&
                                   static_cast<uint32_t>(v) <= j + m - 1);
      }
    } else {
      // Bit-sliced encoding: slice k holds bit k of the code (missing = 0).
      const uint32_t code = missing ? 0 : static_cast<uint32_t>(v);
      for (size_t k = 0; k < ab.values.size(); ++k) {
        ab.values[k].AppendBit((code >> k) & 1);
      }
    }
    if (ab.missing.has_value()) ab.missing->AppendBit(missing);
  }
  ++num_rows_;
  return Status::OK();
}

namespace {
constexpr char kBitmapMagic[] = "INCDBBM1";
}  // namespace

Status BitmapIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  BinaryWriter writer(out);
  writer.WriteString(kBitmapMagic);
  writer.WriteU8(static_cast<uint8_t>(options_.encoding));
  writer.WriteU8(static_cast<uint8_t>(options_.missing_strategy));
  writer.WriteU64(num_rows_);
  writer.WriteU64(attributes_.size());
  for (const AttributeBitmaps& ab : attributes_) {
    writer.WriteU32(ab.cardinality);
    writer.WriteU8(ab.missing.has_value() ? 1 : 0);
    if (ab.missing.has_value()) ab.missing->SaveTo(writer);
    writer.WriteU64(ab.values.size());
    for (const WahBitVector& bitmap : ab.values) bitmap.SaveTo(writer);
  }
  return writer.status();
}

Result<BitmapIndex> BitmapIndex::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  BinaryReader reader(in);
  INCDB_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(64));
  if (magic != kBitmapMagic) {
    return Status::IOError("'" + path + "' is not an incdb bitmap index");
  }
  Options options;
  INCDB_ASSIGN_OR_RETURN(uint8_t encoding, reader.ReadU8());
  INCDB_ASSIGN_OR_RETURN(uint8_t strategy, reader.ReadU8());
  if (encoding > static_cast<uint8_t>(BitmapEncoding::kBitSliced) ||
      strategy > static_cast<uint8_t>(MissingStrategy::kAllZeros)) {
    return Status::IOError("'" + path + "': corrupted options");
  }
  options.encoding = static_cast<BitmapEncoding>(encoding);
  options.missing_strategy = static_cast<MissingStrategy>(strategy);
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, reader.ReadU64());
  if (num_attrs > (1u << 20)) {
    return Status::IOError("'" + path + "': implausible attribute count");
  }
  std::vector<AttributeBitmaps> attributes;
  attributes.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    AttributeBitmaps ab;
    INCDB_ASSIGN_OR_RETURN(ab.cardinality, reader.ReadU32());
    INCDB_ASSIGN_OR_RETURN(uint8_t has_missing, reader.ReadU8());
    if (has_missing != 0) {
      INCDB_ASSIGN_OR_RETURN(WahBitVector missing,
                             WahBitVector::LoadFrom(reader));
      if (missing.size() != num_rows) {
        return Status::IOError("'" + path + "': bitmap size mismatch");
      }
      ab.missing = std::move(missing);
      ab.has_missing = true;
    }
    INCDB_ASSIGN_OR_RETURN(uint64_t num_bitmaps, reader.ReadU64());
    uint64_t expected = 0;
    switch (options.encoding) {
      case BitmapEncoding::kEquality:
        expected = ab.cardinality;
        break;
      case BitmapEncoding::kRange:
        expected = ab.cardinality > 0 ? ab.cardinality - 1 : 0;
        break;
      case BitmapEncoding::kInterval:
        expected = IntervalEncodingN(ab.cardinality);
        break;
      case BitmapEncoding::kBitSliced:
        expected =
            static_cast<uint64_t>(bitutil::BitsForCardinality(ab.cardinality));
        break;
    }
    if (num_bitmaps != expected) {
      return Status::IOError("'" + path + "': bitmap count mismatch");
    }
    ab.values.reserve(num_bitmaps);
    for (uint64_t j = 0; j < num_bitmaps; ++j) {
      INCDB_ASSIGN_OR_RETURN(WahBitVector bitmap,
                             WahBitVector::LoadFrom(reader));
      if (bitmap.size() != num_rows) {
        return Status::IOError("'" + path + "': bitmap size mismatch");
      }
      ab.values.push_back(std::move(bitmap));
    }
    attributes.push_back(std::move(ab));
  }
  return BitmapIndex(options, num_rows, std::move(attributes));
}

Result<BitmapIndex> BitmapIndex::FromParts(
    Options options, uint64_t num_rows,
    std::vector<AttributeBitmaps> attributes) {
  if ((options.missing_strategy == MissingStrategy::kAllOnes ||
       options.missing_strategy == MissingStrategy::kAllZeros) &&
      options.encoding != BitmapEncoding::kEquality) {
    return Status::InvalidArgument(
        "bitmap parts: all-ones/all-zeros strategies are equality-only");
  }
  for (size_t a = 0; a < attributes.size(); ++a) {
    const AttributeBitmaps& ab = attributes[a];
    uint64_t expected = 0;
    switch (options.encoding) {
      case BitmapEncoding::kEquality:
        expected = ab.cardinality;
        break;
      case BitmapEncoding::kRange:
        expected = ab.cardinality > 0 ? ab.cardinality - 1 : 0;
        break;
      case BitmapEncoding::kInterval:
        expected = IntervalEncodingN(ab.cardinality);
        break;
      case BitmapEncoding::kBitSliced:
        expected =
            static_cast<uint64_t>(bitutil::BitsForCardinality(ab.cardinality));
        break;
    }
    if (ab.values.size() != expected) {
      return Status::IOError("bitmap parts: attribute " + std::to_string(a) +
                             " has " + std::to_string(ab.values.size()) +
                             " value bitmaps, encoding implies " +
                             std::to_string(expected));
    }
    if (ab.has_missing != ab.missing.has_value()) {
      return Status::IOError("bitmap parts: attribute " + std::to_string(a) +
                             " missing-bitmap flag mismatch");
    }
    if (ab.missing.has_value() && ab.missing->size() != num_rows) {
      return Status::IOError("bitmap parts: attribute " + std::to_string(a) +
                             " missing bitmap size mismatch");
    }
    for (const WahBitVector& bitmap : ab.values) {
      if (bitmap.size() != num_rows) {
        return Status::IOError("bitmap parts: attribute " + std::to_string(a) +
                               " bitmap size mismatch");
      }
    }
  }
  return BitmapIndex(options, num_rows, std::move(attributes));
}

uint64_t BitmapIndex::SizeInBytes() const {
  uint64_t total = 0;
  for (size_t a = 0; a < attributes_.size(); ++a) {
    total += AttributeSizeInBytes(a);
  }
  return total;
}

uint64_t BitmapIndex::AttributeSizeInBytes(size_t attr) const {
  const AttributeBitmaps& ab = attributes_[attr];
  uint64_t total = 0;
  for (const WahBitVector& bitmap : ab.values) total += bitmap.SizeInBytes();
  if (ab.missing.has_value()) total += ab.missing->SizeInBytes();
  return total;
}

size_t BitmapIndex::NumBitmaps(size_t attr) const {
  const AttributeBitmaps& ab = attributes_[attr];
  return ab.values.size() + (ab.missing.has_value() ? 1 : 0);
}

uint64_t BitmapIndex::VerbatimSizeInBytes() const {
  uint64_t total = 0;
  const uint64_t bytes_per_bitmap = bitutil::CeilDiv(num_rows_, 8);
  for (size_t a = 0; a < attributes_.size(); ++a) {
    total += NumBitmaps(a) * bytes_per_bitmap;
  }
  return total;
}

double BitmapIndex::CompressionRatio() const {
  const uint64_t verbatim = VerbatimSizeInBytes();
  if (verbatim == 0) return 0.0;
  return static_cast<double>(SizeInBytes()) / static_cast<double>(verbatim);
}

double BitmapIndex::AttributeCompressionRatio(size_t attr) const {
  const uint64_t verbatim =
      NumBitmaps(attr) * bitutil::CeilDiv(num_rows_, 8);
  if (verbatim == 0) return 0.0;
  return static_cast<double>(AttributeSizeInBytes(attr)) /
         static_cast<double>(verbatim);
}

}  // namespace incdb
