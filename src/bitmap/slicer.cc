#include "bitmap/slicer.h"

#include "common/bitutil.h"

namespace incdb {

namespace {

/// ceil(sqrt(c)) by Newton iteration on integers (exact; no floating-point
/// rounding hazard anywhere in the representable range).
uint32_t CeilSqrt(uint32_t c) {
  if (c <= 1) return c;
  uint64_t x = c;
  uint64_t y = (x + 1) / 2;
  while (y < x) {
    x = y;
    y = (x + c / x) / 2;
  }
  // x = floor(sqrt(c)); bump to the ceiling when c is not a perfect square.
  return static_cast<uint32_t>(x * x == c ? x : x + 1);
}

}  // namespace

std::string_view SlotSchemeToString(SlotScheme scheme) {
  switch (scheme) {
    case SlotScheme::kDirect:
      return "direct";
    case SlotScheme::kMultiComponent:
      return "multi-component";
    case SlotScheme::kHierarchical:
      return "hierarchical";
  }
  return "unknown";
}

Result<Slicer> Slicer::Create(SlotScheme scheme, uint32_t cardinality) {
  if (cardinality == 0) {
    return Status::InvalidArgument("slicer: cardinality must be >= 1");
  }
  std::vector<Axis> axes;
  switch (scheme) {
    case SlotScheme::kDirect:
      axes.push_back(Axis{cardinality, 1});
      break;
    case SlotScheme::kMultiComponent: {
      // Two balanced components: space O(r0 + r1) ~ 2*sqrt(C) is the
      // k-component optimum at k = 2 (Chan & Ioannidis); the top radix is
      // minimal for the chosen base, so every top digit actually occurs.
      const uint32_t r0 = CeilSqrt(cardinality);
      const uint32_t r1 =
          static_cast<uint32_t>(bitutil::CeilDiv(cardinality, r0));
      axes.push_back(Axis{r0, 1});
      axes.push_back(Axis{r1, r0});
      break;
    }
    case SlotScheme::kHierarchical: {
      // Fanout-2 levels up to a single root bin: bin b at level l covers
      // values [b*2^l + 1, (b+1)*2^l] (clipped to the domain), so every
      // level-l bin is the union of two level-(l-1) bins and a range is
      // coverable by <= 2 aligned bins per level.
      uint32_t slots = cardinality;
      uint64_t divisor = 1;
      axes.push_back(Axis{slots, divisor});
      while (slots > 1) {
        slots = static_cast<uint32_t>(bitutil::CeilDiv(slots, 2));
        divisor *= 2;
        axes.push_back(Axis{slots, divisor});
      }
      break;
    }
  }
  if (axes.empty()) return Status::InvalidArgument("slicer: unknown scheme");
  return Slicer(scheme, cardinality, std::move(axes));
}

uint64_t Slicer::TotalSlots() const {
  uint64_t total = 0;
  for (const Axis& axis : axes_) total += axis.num_slots;
  return total;
}

}  // namespace incdb
