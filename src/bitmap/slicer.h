#ifndef INCDB_BITMAP_SLICER_H_
#define INCDB_BITMAP_SLICER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/value.h"

namespace incdb {

/// How an attribute's value domain is mapped onto bitmap slots — the
/// *binning* axis of the bitmap layer's binning x encoding architecture
/// (docs/ENCODINGS.md). A slicer turns each value into one slot id per
/// axis; an encoder (bitmap/encoder.h) then turns each axis's slot stream
/// into WAH bitvectors. Any slicer composes with any encoder.
///
/// The slicer layer deliberately knows nothing about WAH compression or
/// encodings: it is pure value-domain geometry over the table's Value type
/// (enforced by the `slicer-isolation` lint rule — slicers depend only on
/// common/ and table/).
enum class SlotScheme {
  /// One axis with one slot per value (slot = v - 1). The binning behind
  /// the paper's BEE/BRE/BIE/BSL indexes: O(C) slots.
  kDirect,
  /// Chan-Ioannidis mixed-radix decomposition: k components whose radices
  /// multiply to >= C, each its own axis (axis 0 = least significant
  /// digit). O(sum of radices) ~ O(k * C^(1/k)) slots instead of O(C); a
  /// point predicate constrains one slot per component.
  kMultiComponent,
  /// Multi-level hierarchy with fanout 2: axis l bins 2^l consecutive
  /// values together (axis 0 = the values themselves, top axis = one root
  /// bin). O(2C) slots, but a wide range is covered by O(log C) aligned
  /// bins instead of O(C) values.
  kHierarchical,
};

std::string_view SlotSchemeToString(SlotScheme scheme);

/// Maps one attribute's values to per-axis slot ids. Deterministic per
/// (scheme, cardinality): rebuilding a slicer from those two numbers always
/// yields the same geometry, so the storage layer persists only the scheme
/// byte and validates the per-axis shapes on open.
class Slicer {
 public:
  struct Axis {
    /// Slots on this axis (the axis's "cardinality" for the encoder).
    uint32_t num_slots = 0;
    /// Value-domain granularity: multi-component — product of the radices
    /// of the lower axes; hierarchical — values per bin (2^level); direct
    /// — 1. SlotOf is ((v - 1) / divisor) % num_slots for every scheme.
    uint64_t divisor = 1;
  };

  /// Derives the axis geometry for an attribute domain of `cardinality`
  /// values (1-based, as everywhere in incdb). Fails on cardinality 0.
  static Result<Slicer> Create(SlotScheme scheme, uint32_t cardinality);

  SlotScheme scheme() const { return scheme_; }
  uint32_t cardinality() const { return cardinality_; }
  size_t num_axes() const { return axes_.size(); }
  const std::vector<Axis>& axes() const { return axes_; }
  uint32_t num_slots(size_t axis) const { return axes_[axis].num_slots; }

  /// Slot id of value `v` (in [1, cardinality]) on `axis`. Missing values
  /// have no slot on any axis — callers route them to the attribute's
  /// missing bitvector instead.
  uint32_t SlotOf(Value v, size_t axis) const {
    const Axis& ax = axes_[axis];
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(v - 1) / ax.divisor) % ax.num_slots);
  }

  /// Total slots across all axes — the bitmap count an equality encoder
  /// would store for this slicer (the space side of the space/probe
  /// trade-off table in docs/ENCODINGS.md).
  uint64_t TotalSlots() const;

 private:
  Slicer(SlotScheme scheme, uint32_t cardinality, std::vector<Axis> axes)
      : scheme_(scheme), cardinality_(cardinality), axes_(std::move(axes)) {}

  SlotScheme scheme_ = SlotScheme::kDirect;
  uint32_t cardinality_ = 0;
  std::vector<Axis> axes_;
};

}  // namespace incdb

#endif  // INCDB_BITMAP_SLICER_H_
