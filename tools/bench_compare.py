#!/usr/bin/env python3
"""Bench-regression gate: diff fresh BENCH_*.json output against baselines.

CI's bench-smoke job runs the benchmark binaries into a scratch directory
and then calls

    python3 tools/bench_compare.py --baseline-dir . --current-dir bench-out

which compares every BENCH_*.json present in BOTH directories. Entries are
keyed by (bench, config) and compared on `millis` (the `bytes` column is a
size, not a time; sizes are checked for exact-match drift and reported but
never gate). The gate FAILS (exit 1) when any file's geometric-mean ratio
current/baseline over its stable entries exceeds the threshold (default
+15%).

Noisy metrics — tail latencies and anything else matching --noisy (default:
names containing "p99") — are excluded from the geomean and reported
warn-only: a regressed p99 on a shared CI runner is usually scheduler
noise, and gating on it teaches people to ignore the gate. The geomean over
the remaining entries is the blocking signal precisely because one noisy
entry cannot move it past the threshold on its own.

Updating baselines: intentional performance changes land by refreshing the
committed BENCH_*.json files in the same PR (run the bench locally or take
the bench-trajectories artifact from CI) — the workflow skips this gate
when the PR carries the `bench-baseline-update` label so the refresh commit
itself does not need to beat the numbers it is replacing.

--inject PCT is a self-test hook: it scales every current `millis` by
(1 + PCT/100) before comparing, so CI can assert the gate actually fails on
a synthetic regression (see the "gate self-check" step in ci.yml).

Stdlib only; no third-party dependencies.
"""

import argparse
import glob
import json
import math
import os
import re
import sys


def load_results(path):
    """Returns {(bench, config): (millis, bytes)} from one BENCH_*.json."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    results = {}
    for entry in doc.get("results", []):
        key = (str(entry["bench"]), str(entry["config"]))
        if key in results:
            raise ValueError(f"{path}: duplicate result key {key}")
        results[key] = (float(entry["millis"]), int(entry.get("bytes", 0)))
    return results


def compare_file(name, baseline, current, threshold, noisy_re, inject_pct):
    """Compares one file's result maps. Returns (failed, lines)."""
    limit = 1.0 + threshold / 100.0
    lines = []
    ratios = []  # stable entries only
    worst = None  # (ratio, key) over stable entries
    failed = False

    common = sorted(set(baseline) & set(current))
    only_base = sorted(set(baseline) - set(current))
    only_cur = sorted(set(current) - set(baseline))

    for key in common:
        base_ms, base_bytes = baseline[key]
        cur_ms, cur_bytes = current[key]
        cur_ms *= 1.0 + inject_pct / 100.0
        label = f"{key[0]} [{key[1]}]"
        if base_ms <= 0.0:
            lines.append(f"  skip  {label}: non-positive baseline millis")
            continue
        ratio = cur_ms / base_ms
        noisy = bool(noisy_re.search(key[0]) or noisy_re.search(key[1]))
        if noisy:
            if ratio > limit:
                lines.append(
                    f"  WARN  {label}: {base_ms:.4f} -> {cur_ms:.4f} ms "
                    f"({(ratio - 1) * 100:+.1f}%), noisy metric, not gating"
                )
            continue
        ratios.append(ratio)
        if worst is None or ratio > worst[0]:
            worst = (ratio, label)
        if base_bytes != cur_bytes and base_bytes != 0:
            lines.append(
                f"  note  {label}: bytes {base_bytes} -> {cur_bytes} "
                f"(size drift; informational)"
            )

    for key in only_base:
        lines.append(f"  note  {key[0]} [{key[1]}]: missing from current run")
    for key in only_cur:
        lines.append(f"  note  {key[0]} [{key[1]}]: new entry, no baseline")

    if ratios:
        geomean = math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        verdict = "OK"
        if geomean > limit:
            verdict = "FAIL"
            failed = True
        lines.insert(
            0,
            f"{verdict:>6}  {name}: geomean {(geomean - 1) * 100:+.1f}% over "
            f"{len(ratios)} stable entr{'y' if len(ratios) == 1 else 'ies'} "
            f"(threshold +{threshold:.0f}%); worst "
            f"{(worst[0] - 1) * 100:+.1f}% at {worst[1]}",
        )
    else:
        lines.insert(0, f"  skip  {name}: no stable entries in common")
    return failed, lines


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json benchmark output against baselines."
    )
    parser.add_argument(
        "--baseline-dir", required=True,
        help="directory holding the committed BENCH_*.json baselines")
    parser.add_argument(
        "--current-dir", required=True,
        help="directory holding freshly produced BENCH_*.json output")
    parser.add_argument(
        "--threshold", type=float, default=15.0,
        help="geomean regression percentage that fails the gate "
             "(default: 15)")
    parser.add_argument(
        "--noisy", default="p99",
        help="regex over bench/config names marking warn-only noisy metrics "
             "(default: p99)")
    parser.add_argument(
        "--inject", type=float, default=0.0, metavar="PCT",
        help="self-test: inflate every current millis by PCT%% before "
             "comparing")
    args = parser.parse_args()

    noisy_re = re.compile(args.noisy)
    current_files = sorted(
        glob.glob(os.path.join(args.current_dir, "BENCH_*.json")))
    if not current_files:
        print(f"bench_compare: no BENCH_*.json in {args.current_dir}",
              file=sys.stderr)
        return 2

    any_failed = False
    compared = 0
    for cur_path in current_files:
        name = os.path.basename(cur_path)
        base_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(base_path):
            print(f"  skip  {name}: no committed baseline")
            continue
        failed, lines = compare_file(
            name, load_results(base_path), load_results(cur_path),
            args.threshold, noisy_re, args.inject)
        compared += 1
        any_failed = any_failed or failed
        print("\n".join(lines))

    if compared == 0:
        print("bench_compare: nothing to compare (no baselines matched)",
              file=sys.stderr)
        return 2
    if any_failed:
        print(
            "\nbench_compare: REGRESSION over threshold. If this change is "
            "an intentional perf trade-off, refresh the committed "
            "BENCH_*.json baselines in this PR and apply the "
            "`bench-baseline-update` label to skip this gate.")
        return 1
    print(f"\nbench_compare: {compared} file(s) within "
          f"+{args.threshold:.0f}% geomean threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
