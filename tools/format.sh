#!/usr/bin/env bash
# Formats (or, with --check, verifies) every C++ source in the repo with
# clang-format using the checked-in .clang-format.
#
# Usage: tools/format.sh [--check]
#   --check   exit non-zero if any file would be reformatted (the CI mode);
#             prints the diffs clang-format would apply.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT to override)" >&2
  exit 1
fi

mapfile -t files < <(find src tests bench tools examples \
  -name '*.cc' -o -name '*.h' -o -name '*.cpp' | sort)

if [[ "${1:-}" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run -Werror "${files[@]}"
  echo "format: ${#files[@]} files clean"
else
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "format: ${#files[@]} files formatted"
fi
