// incdb_cli — query incomplete CSV datasets from the command line.
//
// Usage:
//   incdb_cli <data.csv> [--index=KIND] [--semantics=match|no-match]
//             [--count] [--limit=N] [--explain] [--threads=N] "<predicate>"
//   incdb_cli <data.csv> --stats
//   incdb_cli <data.csv> --advise [--dims=K] [--selectivity=F] [--point]
//   incdb_cli <data.csv> [--index=KIND] --save=DIR
//   incdb_cli --open=DIR [--no-verify] [--count] "<predicate>"
//   incdb_cli --connect=HOST:PORT [--count] [--deadline=MS] "<predicate>"
//   incdb_cli --connect=HOST:PORT --server-stats
//
// --save persists the database (table + built indexes) into a store
// directory; --open serves queries from one via mmap without re-reading
// the CSV or rebuilding indexes (docs/STORAGE.md); --connect runs the
// query on a remote incdb_serverd over the wire protocol instead of
// loading any data locally (docs/SERVING.md), and --server-stats prints
// the daemon's observability counters.
//
// The CSV header must be `name:cardinality` per column; missing cells are
// `?` (the format written by incdb::WriteCsv). Predicates use the grammar
// of query/parser.h, e.g.:
//
//   incdb_cli census.csv "age IN [3,5] AND NOT income = 1"
//
// With no --index the cost-based advisor picks the structure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "core/database.h"
#include "core/index_factory.h"
#include "query/parser.h"
#include "server/client.h"
#include "stats/histogram.h"
#include "table/csv.h"

namespace incdb {
namespace {

struct CliOptions {
  std::string csv_path;
  std::string query_text;
  std::string index = "auto";
  MissingSemantics semantics = MissingSemantics::kMatch;
  bool count_only = false;
  bool explain = false;
  // Plan-leaf worker threads: 1 = serial, 0 = hardware concurrency.
  size_t threads = 1;
  bool stats = false;
  bool advise = false;
  std::string save_dir;
  std::string open_dir;
  std::string connect;  // "host:port"
  bool server_stats = false;
  uint64_t deadline_millis = 0;
  bool verify_checksums = true;
  size_t limit = 20;
  // advisor profile knobs
  size_t dims = 4;
  double selectivity = 0.1;
  bool point = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: incdb_cli <data.csv> "
      "[--index=bee|bre|bie|bsl|mc|hier|va|va+|scan]\n"
      "                 [--semantics=match|no-match] [--count] [--limit=N]\n"
      "                 [--explain] [--threads=N] \"<predicate>\"\n"
      "       incdb_cli <data.csv> --stats\n"
      "       incdb_cli <data.csv> --advise [--dims=K] [--selectivity=F] "
      "[--point]\n"
      "       incdb_cli <data.csv> [--index=KIND] --save=DIR\n"
      "       incdb_cli --open=DIR [--no-verify] [--count] \"<predicate>\"\n"
      "       incdb_cli --connect=HOST:PORT [--count] [--deadline=MS] "
      "\"<predicate>\"\n"
      "       incdb_cli --connect=HOST:PORT --server-stats\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--index=", 0) == 0) {
      options->index = arg.substr(8);
    } else if (arg.rfind("--semantics=", 0) == 0) {
      const std::string value = arg.substr(12);
      if (value == "match") {
        options->semantics = MissingSemantics::kMatch;
      } else if (value == "no-match") {
        options->semantics = MissingSemantics::kNoMatch;
      } else {
        return false;
      }
    } else if (arg == "--count") {
      options->count_only = true;
    } else if (arg == "--explain") {
      options->explain = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      options->threads = static_cast<size_t>(std::atoll(arg.c_str() + 10));
    } else if (arg.rfind("--save=", 0) == 0) {
      options->save_dir = arg.substr(7);
    } else if (arg.rfind("--open=", 0) == 0) {
      options->open_dir = arg.substr(7);
    } else if (arg.rfind("--connect=", 0) == 0) {
      options->connect = arg.substr(10);
    } else if (arg == "--server-stats") {
      options->server_stats = true;
    } else if (arg.rfind("--deadline=", 0) == 0) {
      options->deadline_millis =
          static_cast<uint64_t>(std::atoll(arg.c_str() + 11));
    } else if (arg == "--no-verify") {
      options->verify_checksums = false;
    } else if (arg == "--stats") {
      options->stats = true;
    } else if (arg == "--advise") {
      options->advise = true;
    } else if (arg == "--point") {
      options->point = true;
    } else if (arg.rfind("--limit=", 0) == 0) {
      options->limit = static_cast<size_t>(std::atoll(arg.c_str() + 8));
    } else if (arg.rfind("--dims=", 0) == 0) {
      options->dims = static_cast<size_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--selectivity=", 0) == 0) {
      options->selectivity = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else {
      positional.push_back(arg);
    }
  }
  if (!options->connect.empty()) {
    // Remote mode: no local data; the predicate is the only positional.
    if (positional.size() > 1) return false;
    if (!positional.empty()) options->query_text = positional[0];
    return !options->query_text.empty() || options->server_stats;
  }
  if (!options->open_dir.empty()) {
    // Store mode: no CSV positional; the predicate is the only positional.
    if (positional.size() > 1) return false;
    if (!positional.empty()) options->query_text = positional[0];
    return !options->query_text.empty() || options->stats;
  }
  if (positional.empty()) return false;
  options->csv_path = positional[0];
  if (positional.size() > 1) options->query_text = positional[1];
  if (positional.size() > 2) return false;
  if (options->query_text.empty() && !options->stats && !options->advise &&
      options->save_dir.empty()) {
    return false;
  }
  return true;
}

int PrintStats(const Table& table) {
  std::printf("%s\n", table.Summary().c_str());
  std::printf("%-20s %12s %12s %10s %8s\n", "attribute", "cardinality",
              "distinct", "missing%", "skew");
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    const AttributeHistogram hist =
        AttributeHistogram::FromColumn(table.column(a));
    std::printf("%-20s %12u %12u %9.1f%% %8.1f\n",
                table.schema().attribute(a).name.c_str(), hist.cardinality(),
                table.column(a).DistinctCount(), hist.MissingRate() * 100.0,
                hist.Skew());
  }
  return 0;
}

int PrintAdvice(const Table& table, const CliOptions& options) {
  const IndexAdvisor advisor(table);
  WorkloadProfile profile;
  profile.dims = std::min(options.dims, table.num_attributes());
  profile.attribute_selectivity = options.selectivity;
  profile.point_queries = options.point;
  profile.semantics = options.semantics;
  std::printf("%-22s %16s %14s\n", "index", "predicted_cost",
              "predicted_MB");
  for (const IndexCostEstimate& estimate : advisor.Rank(profile, 1e18)) {
    std::printf("%-22s %16.0f %14.3f\n",
                std::string(IndexKindToString(estimate.kind)).c_str(),
                estimate.query_cost,
                estimate.size_bytes / (1024.0 * 1024.0));
  }
  return 0;
}

int RunQuery(Database& db, const CliOptions& options);

/// Remote mode: every query (and the stats probe) goes over the wire to a
/// running incdb_serverd; nothing is loaded locally.
int RunRemote(const CliOptions& options) {
  const size_t colon = options.connect.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "error: --connect needs HOST:PORT\n");
    return Usage();
  }
  const std::string host = options.connect.substr(0, colon);
  const int port = std::atoi(options.connect.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: bad port in --connect\n");
    return Usage();
  }
  server::ClientOptions client_options;
  client_options.client_name = "incdb_cli";
  auto client = server::Client::Connect(
      host, static_cast<uint16_t>(port), client_options);
  if (!client.ok()) {
    std::fprintf(stderr, "error: %s\n", client.status().ToString().c_str());
    return 1;
  }

  if (options.server_stats) {
    const auto stats = client->Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("server:               %s (uptime %llu ms%s)\n",
                client->server_hello().peer_name.c_str(),
                static_cast<unsigned long long>(stats->uptime_millis),
                stats->draining ? ", draining" : "");
    std::printf("connections:          %llu accepted, %llu active\n",
                static_cast<unsigned long long>(stats->accepted_connections),
                static_cast<unsigned long long>(stats->active_connections));
    std::printf("requests:             %llu admitted, %llu completed, "
                "%llu failed\n",
                static_cast<unsigned long long>(stats->admitted),
                static_cast<unsigned long long>(stats->completed),
                static_cast<unsigned long long>(stats->failed));
    std::printf("backpressure:         %llu overloaded, %llu invalid, "
                "%llu shed expired, %llu deadline exceeded\n",
                static_cast<unsigned long long>(stats->rejected_overloaded),
                static_cast<unsigned long long>(stats->rejected_invalid),
                static_cast<unsigned long long>(stats->shed_expired),
                static_cast<unsigned long long>(stats->deadline_exceeded));
    std::printf("queue:                %llu / %llu (workers %llu)\n",
                static_cast<unsigned long long>(stats->queue_depth),
                static_cast<unsigned long long>(stats->queue_capacity),
                static_cast<unsigned long long>(stats->workers));
    std::printf("latency:              p50 %llu us, p99 %llu us\n",
                static_cast<unsigned long long>(stats->p50_micros),
                static_cast<unsigned long long>(stats->p99_micros));
    std::printf("segments:             %llu sealed; %llu compaction(s), "
                "%llu row(s) / %llu byte(s) reclaimed\n",
                static_cast<unsigned long long>(stats->segments),
                static_cast<unsigned long long>(stats->compactions),
                static_cast<unsigned long long>(
                    stats->compaction_reclaimed_rows),
                static_cast<unsigned long long>(
                    stats->compaction_reclaimed_bytes));
    if (options.query_text.empty()) return 0;
  }

  QueryRequest request =
      QueryRequest::Text(options.query_text, options.semantics)
          .CountOnly(options.count_only)
          .Parallel(options.threads)
          .Explain(options.explain);
  if (options.deadline_millis != 0) {
    request.DeadlineMillis(options.deadline_millis);
  }
  if (!options.count_only && options.limit != 0) {
    request.Limit(options.limit);
  }
  const auto result = client->Run(request);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (options.explain) std::fprintf(stderr, "%s", result->explain.c_str());
  std::fprintf(
      stderr, "# %llu match(es) via %s [remote %s] epoch=%llu rows=%llu\n",
      static_cast<unsigned long long>(result->count),
      result->chosen_index.c_str(),
      client->server_hello().peer_name.c_str(),
      static_cast<unsigned long long>(result->epoch),
      static_cast<unsigned long long>(result->visible_rows));
  if (options.count_only) {
    std::printf("%llu\n", static_cast<unsigned long long>(result->count));
    return 0;
  }
  // No local table in remote mode: print the (limit-capped) row ids.
  for (const uint32_t r : result->row_ids) std::printf("%u\n", r);
  if (result->count > result->row_ids.size()) {
    std::printf("... (%llu more)\n",
                static_cast<unsigned long long>(result->count -
                                                result->row_ids.size()));
  }
  return 0;
}

int Main(int argc, char** argv) {
  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage();

  if (!options.connect.empty()) return RunRemote(options);

  if (!options.open_dir.empty()) {
    // Serve from a persisted store: zero-copy mmap open, indexes included.
    auto db = Database::Open(options.open_dir, options.verify_checksums);
    if (!db.ok()) {
      std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
      return 1;
    }
    if (options.stats) return PrintStats(db->table());
    return RunQuery(db.value(), options);
  }

  auto table = ReadCsv(options.csv_path);
  if (!table.ok()) {
    std::fprintf(stderr, "error: %s\n", table.status().ToString().c_str());
    return 1;
  }
  if (options.stats) return PrintStats(table.value());
  if (options.advise) return PrintAdvice(table.value(), options);

  auto db = Database::FromTable(std::move(table).value());
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }

  if (options.index == "auto") {
    const IndexAdvisor advisor(db->table());
    WorkloadProfile profile;
    profile.dims = std::min<size_t>(4, db->table().num_attributes());
    profile.semantics = options.semantics;
    const IndexKind pick = advisor.Recommend(profile);
    if (pick != IndexKind::kSequentialScan) {
      const Status status = db->BuildIndex(pick);
      if (!status.ok()) {
        std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  } else if (options.index != "scan") {
    const auto kind = IndexKindFromString(options.index);
    if (!kind.ok()) {
      std::fprintf(stderr, "error: %s\n", kind.status().ToString().c_str());
      return Usage();
    }
    const Status status = db->BuildIndex(kind.value());
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  if (!options.save_dir.empty()) {
    const Status status = db->Save(options.save_dir);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "# saved %s (+%zu index(es)) to %s\n",
                 db->table().Summary().c_str(), db->Indexes().size(),
                 options.save_dir.c_str());
    if (options.query_text.empty()) return 0;
  }

  return RunQuery(db.value(), options);
}

int RunQuery(Database& db, const CliOptions& options) {
  const auto result =
      db.Run(QueryRequest::Text(options.query_text, options.semantics)
                 .CountOnly(options.count_only)
                 .Parallel(options.threads)
                 .Explain(options.explain));
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }
  if (options.explain) {
    // The operator tree that actually ran, with estimated vs realized
    // selectivity and per-operator cost counters.
    std::fprintf(stderr, "%s", result->explain.c_str());
  }
  std::fprintf(
      stderr, "# %llu match(es) via %s [%s] epoch=%llu rows=%llu\n",
      static_cast<unsigned long long>(result->count),
      result->chosen_index.c_str(),
      std::string(MissingSemanticsToString(options.semantics)).c_str(),
      static_cast<unsigned long long>(result->epoch),
      static_cast<unsigned long long>(result->visible_rows));
  std::fprintf(
      stderr,
      "# plan: est_selectivity=%.4f est_cost=%.0f | bitvectors=%llu ops=%llu "
      "words=%llu candidates=%llu simd=%llu decoded=%llu\n",
      result->routing.estimated_selectivity, result->routing.estimated_cost,
      static_cast<unsigned long long>(result->stats.bitvectors_accessed),
      static_cast<unsigned long long>(result->stats.bitvector_ops),
      static_cast<unsigned long long>(result->stats.words_touched),
      static_cast<unsigned long long>(result->stats.candidates),
      static_cast<unsigned long long>(result->stats.simd_path),
      static_cast<unsigned long long>(result->stats.words_decoded));
  if (options.count_only) {
    std::printf("%llu\n", static_cast<unsigned long long>(result->count));
    return 0;
  }
  const Table& data = db.table();
  size_t printed = 0;
  for (uint32_t r : result->row_ids) {
    if (printed++ == options.limit) {
      std::printf("... (%zu more)\n", result->row_ids.size() - options.limit);
      break;
    }
    std::printf("%u:", r);
    for (size_t a = 0; a < data.num_attributes(); ++a) {
      const Value v = data.Get(r, a);
      if (IsMissing(v)) {
        std::printf(" ?");
      } else {
        std::printf(" %d", v);
      }
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main(int argc, char** argv) { return incdb::Main(argc, argv); }
