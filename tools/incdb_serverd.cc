// incdb_serverd — serve an incomplete database over TCP.
//
// Usage:
//   incdb_serverd --open=DIR  [--host=H] [--port=P] [--workers=N]
//                 [--queue=N]
//   incdb_serverd --csv=FILE [--index=bee|bre|bie|bsl|va|va+|scan] [...]
//
// Loads the database (a persisted store directory or a CSV), binds, and
// serves the versioned wire protocol (docs/SERVING.md) until SIGTERM or
// SIGINT, then drains gracefully: stops accepting, finishes every queued
// request, answers the waiting clients, and exits 0. Talk to it with
// `incdb_cli --connect=host:port "<predicate>"` or the C++ Client library
// (src/server/client.h).

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "core/database.h"
#include "server/server.h"
#include "table/csv.h"

namespace incdb {
namespace {

// Async-signal context allows only lock-free flag writes; the main thread
// polls it and runs the actual drain.
std::sig_atomic_t g_shutdown_requested = 0;

void HandleShutdownSignal(int /*signum*/) { g_shutdown_requested = 1; }

struct DaemonOptions {
  std::string open_dir;
  std::string csv_path;
  std::string index = "auto";
  /// Run a background compactor; deletes are reclaimed while serving.
  bool compact = false;
  BackgroundCompactor::Options compactor;
  server::ServerOptions server;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: incdb_serverd --open=DIR  [--host=H] [--port=P] [--workers=N]"
      " [--queue=N]\n"
      "       incdb_serverd --csv=FILE "
      "[--index=bee|bre|bie|bsl|mc|hier|va|va+|scan] [...]\n"
      "       [--compact] [--compact-interval-ms=N]"
      " [--compact-min-deleted=N]\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, DaemonOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--open=", 0) == 0) {
      options->open_dir = arg.substr(7);
    } else if (arg.rfind("--csv=", 0) == 0) {
      options->csv_path = arg.substr(6);
    } else if (arg.rfind("--index=", 0) == 0) {
      options->index = arg.substr(8);
    } else if (arg.rfind("--host=", 0) == 0) {
      options->server.host = arg.substr(7);
    } else if (arg.rfind("--port=", 0) == 0) {
      options->server.port = static_cast<uint16_t>(std::atoi(arg.c_str() + 7));
    } else if (arg.rfind("--workers=", 0) == 0) {
      options->server.workers =
          static_cast<size_t>(std::atoll(arg.c_str() + 10));
    } else if (arg.rfind("--queue=", 0) == 0) {
      options->server.queue_capacity =
          static_cast<size_t>(std::atoll(arg.c_str() + 8));
    } else if (arg == "--compact") {
      options->compact = true;
    } else if (arg.rfind("--compact-interval-ms=", 0) == 0) {
      options->compact = true;
      options->compactor.interval_millis =
          static_cast<uint64_t>(std::atoll(arg.c_str() + 22));
    } else if (arg.rfind("--compact-min-deleted=", 0) == 0) {
      options->compact = true;
      options->compactor.min_deleted_rows =
          static_cast<uint64_t>(std::atoll(arg.c_str() + 22));
    } else {
      return false;
    }
  }
  // Exactly one data source.
  return options->open_dir.empty() != options->csv_path.empty();
}

Result<Database> LoadDatabase(const DaemonOptions& options) {
  if (!options.open_dir.empty()) {
    return Database::Open(options.open_dir, /*verify_checksums=*/true);
  }
  INCDB_ASSIGN_OR_RETURN(Table table, ReadCsv(options.csv_path));
  INCDB_ASSIGN_OR_RETURN(Database db, Database::FromTable(std::move(table)));
  if (options.index != "auto" && options.index != "scan") {
    INCDB_ASSIGN_OR_RETURN(const IndexKind kind,
                           IndexKindFromString(options.index));
    INCDB_RETURN_IF_ERROR(db.BuildIndex(kind));
  } else if (options.index == "auto") {
    // Default serving index: equality-encoded bitmaps answer both point
    // and range shapes and the planner falls back to a scan when beaten.
    INCDB_RETURN_IF_ERROR(db.BuildIndex(IndexKind::kBitmapEquality));
  }
  return db;
}

int Main(int argc, char** argv) {
  DaemonOptions options;
  if (!ParseArgs(argc, argv, &options)) return Usage();

  auto db = LoadDatabase(options);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }

  auto server = server::Server::Start(&db.value(), options.server);
  if (!server.ok()) {
    std::fprintf(stderr, "error: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // Optional background compaction: reclaims deleted rows while serving
  // (readers never block; compaction publishes via the epoch swap).
  // Destroyed before the Database — declaration order matters here.
  std::unique_ptr<BackgroundCompactor> compactor;
  if (options.compact) {
    compactor =
        std::make_unique<BackgroundCompactor>(&db.value(), options.compactor);
    std::fprintf(stderr,
                 "# background compactor: every %llums once %llu row(s) "
                 "deleted\n",
                 static_cast<unsigned long long>(
                     options.compactor.interval_millis),
                 static_cast<unsigned long long>(
                     options.compactor.min_deleted_rows));
  }

  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);

  std::fprintf(stderr, "# incdb_serverd listening on %s:%u (%s)\n",
               options.server.host.c_str(), (*server)->port(),
               db->table().Summary().c_str());

  while (g_shutdown_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "# draining...\n");
  const server::wire::ServerStats before = (*server)->StatsSnapshot();
  (*server)->Shutdown();
  const server::wire::ServerStats stats = (*server)->StatsSnapshot();
  std::fprintf(stderr,
               "# served %llu request(s) (%llu rejected overloaded, %llu "
               "shed expired, %llu queued at drain); bye\n",
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.rejected_overloaded),
               static_cast<unsigned long long>(stats.shed_expired),
               static_cast<unsigned long long>(before.queue_depth));
  return 0;
}

}  // namespace
}  // namespace incdb

int main(int argc, char** argv) { return incdb::Main(argc, argv); }
