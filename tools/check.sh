#!/usr/bin/env bash
# One-command sanitizer gate: configure + build a sanitizer preset and run
# the full test suite under it.
#
# Usage: tools/check.sh [asan|tsan] [extra ctest args]
#
# Default is asan (AddressSanitizer + UBSan). tsan (ThreadSanitizer) is the
# gate for the concurrent snapshot/serving paths — the snapshot stress
# tests race 8 readers against a mutating writer, and the plan-labeled
# suite drives the morsel-parallel plan executor, under it.
set -euo pipefail

cd "$(dirname "$0")/.."

preset=asan
if [[ $# -gt 0 && ( "$1" == "asan" || "$1" == "tsan" ) ]]; then
  preset="$1"
  shift
fi

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)" "$@"

if [[ "$preset" == "tsan" ]]; then
  # Explicit second pass over the plan suite: the morsel-parallel executor
  # (word-aligned scan morsels, concurrent index probes) must be TSan-clean
  # even when the caller filtered the main invocation with extra ctest args.
  ctest --preset "$preset" -L plan --output-on-failure
fi
