#!/usr/bin/env bash
# One-command correctness gates: sanitizer presets and the static-analysis
# pass (docs/STATIC_ANALYSIS.md).
#
# Usage: tools/check.sh [asan|ubsan|tsan|lint] [extra ctest args]
#
#   asan   AddressSanitizer over the full test suite (default).
#   ubsan  UndefinedBehaviorSanitizer (undefined,float-divide-by-zero, plus
#          implicit-conversion on clang) over the full test suite.
#   tsan   ThreadSanitizer — the gate for the concurrent snapshot/serving
#          paths: the snapshot stress tests race 8 readers against a
#          mutating writer, and the plan-labeled suite drives the
#          morsel-parallel plan executor.
#   lint   Static analysis without running anything: tools/lint.py (always),
#          then clang-format --check and clang-tidy when installed. The CI
#          `lint` job runs this with both tools present; locally, missing
#          tools are skipped with a notice so the script stays usable on
#          gcc-only machines.
set -euo pipefail

cd "$(dirname "$0")/.."

mode=asan
if [[ $# -gt 0 && ( "$1" == "asan" || "$1" == "ubsan" || "$1" == "tsan" \
      || "$1" == "lint" ) ]]; then
  mode="$1"
  shift
fi

if [[ "$mode" == "lint" ]]; then
  python3 tools/lint.py

  if command -v clang-format >/dev/null 2>&1; then
    tools/format.sh --check
  else
    echo "check.sh: clang-format not installed; skipping format check" >&2
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    # clang-tidy needs a compilation database; configure a dedicated build
    # dir with clang so the thread-safety attributes are parsed natively.
    tidy_cc=clang++
    command -v clang++ >/dev/null 2>&1 || tidy_cc=c++
    cmake -B build-tidy -S . -DCMAKE_BUILD_TYPE=Debug \
      -DCMAKE_CXX_COMPILER="$tidy_cc" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p build-tidy -quiet "${tidy_sources[@]}"
    else
      clang-tidy -p build-tidy --quiet "${tidy_sources[@]}"
    fi
  else
    echo "check.sh: clang-tidy not installed; skipping tidy pass" >&2
  fi
  exit 0
fi

cmake --preset "$mode"
cmake --build --preset "$mode" -j "$(nproc)"
ctest --preset "$mode" -j "$(nproc)" "$@"

if [[ "$mode" == "tsan" ]]; then
  # Explicit second pass over the plan and server suites: the morsel-parallel
  # executor (word-aligned scan morsels, concurrent index probes) and the
  # serving daemon (worker pool, admission queue, many clients racing a
  # writer) must be TSan-clean even when the caller filtered the main
  # invocation with extra ctest args.
  ctest --preset "$mode" -L 'plan|server' --output-on-failure
fi
