#!/usr/bin/env bash
# One-command sanitizer gate: configure + build the ASan+UBSan preset and
# run the full test suite under it. Usage: tools/check.sh [extra ctest args]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"
ctest --preset asan -j "$(nproc)" "$@"
