#!/usr/bin/env python3
"""incdb project lint: the correctness rules clang-tidy cannot express.

Part 3 of the compile-time correctness gate (docs/STATIC_ANALYSIS.md).
Checks, over the committed sources (no build needed):

  no-throw          `throw` / `catch` are banned: the library reports every
                    runtime failure through Status/Result (common/status.h).
                    An exception crossing a public boundary would bypass the
                    [[nodiscard]] discipline entirely.
  raw-new           Raw `new` / `delete` are banned; ownership goes through
                    make_unique/make_shared/containers. The private-ctor
                    factory idiom may suppress per line (see below).
  banned-call       std::rand / srand / time(nullptr) / time(0): incdb has a
                    seeded, deterministic RNG (common/rng.h); wall-clock
                    seeding makes failures irreproducible.
  layering          #include across src/ modules must follow the dependency
                    DAG declared in the CMake target graph. In particular a
                    public header must never reach into a module that sits
                    above it (e.g. core/*.h including plan/*.h — the plan
                    layer sits between core_base and core, so only core
                    *implementation* files may).
  header-guard      src headers open with `#ifndef INCDB_<PATH>_H_`.
  using-namespace   `using namespace std` (or any namespace) at file scope.
  no-tsa-audit      INCDB_NO_THREAD_SAFETY_ANALYSIS is an escape hatch;
                    every use must be suppressed explicitly so it shows up
                    in review.
  simd-isolation    Raw CPU intrinsics (<immintrin.h> and friends, _mm*/
                    __m128/__m256 identifiers) are banned outside src/simd/.
                    The simd module compiles its ISA-specific TUs with their
                    own -m flags; an intrinsic elsewhere would either fail to
                    build or silently leak AVX2 codegen into TUs that must
                    run on baseline hardware. Everyone else goes through the
                    runtime-dispatched simd::ActiveKernels() table.
  slicer-isolation  The slicer layer (src/bitmap/slicer.*) maps values to
                    slot intervals and must know nothing about how slots are
                    materialized: any include of the WAH/compression module
                    or the bitmap encoder headers is banned there. Keeping
                    the slicer free of encoder types is what makes the
                    binning x encoding matrix orthogonal — a new encoding
                    must not force a slicer edit, and vice versa.
  net-isolation     OS networking headers (<sys/socket.h>, <netdb.h>, ...)
                    and raw socket syscalls are banned outside src/server/
                    and tests/server/ (which impersonates hostile peers on
                    purpose). Everything else talks TCP through the typed
                    wrappers in server/net.h and the Client library, so
                    error handling (Status, EINTR, partial I/O, SIGPIPE)
                    lives in exactly one audited place.

A finding on one line can be suppressed — with justification in an adjacent
comment — by appending `lint:allow(<rule>)` in a comment on that line.

Exit status 0 = clean, 1 = findings, 2 = usage/config error.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned for the behavioural rules (no-throw, raw-new, ...).
SCAN_DIRS = ("src", "tests", "tools", "bench", "examples")
# Layering and header-guard rules apply to the library only.
LIB_DIR = "src"

CXX_EXTENSIONS = (".cc", ".h")

# Files allowed to use throw/catch. Empty: the last catch sites (the CSV
# parser's std::sto* shims) were converted to Result-returning parsing.
THROW_ALLOWLIST: frozenset = frozenset()

# Module dependency DAG for headers, mirroring src/*/CMakeLists.txt target
# link edges (transitively closed). A header in module M may include only
# headers of M itself and of ALLOWED_HEADER_DEPS[M].
ALLOWED_HEADER_DEPS = {
    "common": set(),
    "simd": {"common"},
    "bitvector": {"common", "simd"},
    "btree": {"common"},
    "rtree": {"common"},
    "table": {"common"},
    "compression": {"common", "simd", "bitvector"},
    "query": {"common", "simd", "bitvector", "table"},
    "stats": {"common", "simd", "bitvector", "table", "query"},
    "bitmap": {"common", "simd", "bitvector", "compression", "table",
               "query"},
    "vafile": {"common", "simd", "bitvector", "table", "query"},
    "baselines": {"common", "simd", "bitvector", "btree", "rtree", "table",
                  "query"},
    "storage": {
        "common", "simd", "bitvector", "compression", "btree", "rtree",
        "table", "query", "bitmap", "vafile", "baselines",
    },
    "core": {
        "common", "simd", "bitvector", "compression", "btree", "rtree",
        "table", "query", "stats", "bitmap", "vafile", "baselines", "storage",
    },
    "plan": {
        "common", "simd", "bitvector", "compression", "btree", "rtree",
        "table", "query", "stats", "bitmap", "vafile", "baselines", "storage",
        "core",
    },
    "server": {
        "common", "simd", "bitvector", "compression", "btree", "rtree",
        "table", "query", "stats", "bitmap", "vafile", "baselines", "storage",
        "core", "plan",
    },
}

# Dependency-inversion seam: interface headers that live in `core` but are
# *implemented* by the modules below it (IncompleteIndex by every index
# family, SnapshotSource by storage). Including them upward is the point of
# the inversion — the implementing module sees only the abstract interface —
# so the layering rule exempts exactly these targets and nothing else.
INTERFACE_HEADERS = frozenset({
    "core/incomplete_index.h",
    "core/snapshot.h",
})

# Everything outside this directory must use the dispatch table in
# simd/simd.h instead of raw intrinsics (see simd-isolation above).
SIMD_DIR = "src/simd/"
SIMD_HEADER_RE = re.compile(
    r'#\s*include\s+<('
    r'immintrin|x86intrin|x86gprintrin|'
    r'xmmintrin|emmintrin|pmmintrin|tmmintrin|smmintrin|nmmintrin|'
    r'wmmintrin|ammintrin|avxintrin|avx2intrin|popcntintrin'
    r')\.h>')
SIMD_IDENT_RE = re.compile(r'\b(_mm\d*_\w+|__m\d+[id]?|__v\d+\w+)\b')

# Direct OS networking is confined to these directories (see net-isolation
# above). tests/server/ is exempt because the protocol-robustness suite
# speaks raw malformed bytes on purpose — it IS the hostile peer.
NET_DIRS = ("src/server/", "tests/server/")
NET_HEADER_RE = re.compile(
    r'#\s*include\s+<('
    r'sys/socket|netinet/in|netinet/tcp|arpa/inet|netdb|sys/un'
    r')\.h>')
# Syscall names chosen to avoid false positives (std::bind, Client::Connect
# and friends are spelled differently); the header rule is the real gate —
# these calls cannot compile without one of the headers above.
NET_IDENT_RE = re.compile(
    r'(?<![\w:.])(?:::)?('
    r'socket|getaddrinfo|freeaddrinfo|setsockopt|getsockopt|getsockname|'
    r'inet_pton|inet_ntop|recvfrom|sendto'
    r')\s*\(')

# The slicer layer's private DAG (see slicer-isolation above): value->slot
# geometry only, so it may see the value type and the common utilities but
# never the compression module or the encoder/bitmap-index headers that sit
# beside it in src/bitmap/.
SLICER_FILES = frozenset({"src/bitmap/slicer.h", "src/bitmap/slicer.cc"})
SLICER_ALLOWED_MODULES = frozenset({"common", "table"})
SLICER_ALLOWED_SELF = frozenset({"bitmap/slicer.h"})

# Implementation files may additionally include these modules' headers.
# core/*.cc call down into the plan layer (Database::Run lowers through the
# planner); core *headers* must not, so the public API stays below plan.
ALLOWED_IMPL_EXTRA_DEPS = {
    "core": {"plan"},
}

SUPPRESS_RE = re.compile(r"lint:allow\(([a-z-]+)\)")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments, string literals, and char literals, preserving
    line structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class Linter:
    def __init__(self):
        self.findings = []

    def report(self, path, lineno, rule, message, raw_line):
        suppressed = {m.group(1) for m in SUPPRESS_RE.finditer(raw_line)}
        if rule in suppressed:
            return
        rel = os.path.relpath(path, REPO)
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    # ---- per-file rules -------------------------------------------------

    def check_file(self, path):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        raw_lines = text.split("\n")
        code_lines = strip_comments_and_strings(text).split("\n")
        rel = os.path.relpath(path, REPO)
        in_lib = rel.startswith(LIB_DIR + os.sep)

        for idx, code in enumerate(code_lines):
            lineno = idx + 1
            raw = raw_lines[idx] if idx < len(raw_lines) else ""

            if rel not in THROW_ALLOWLIST:
                if re.search(r"\bthrow\b", code):
                    self.report(path, lineno, "no-throw",
                                "`throw` is banned; return a Status "
                                "(common/status.h)", raw)
                if re.search(r"\bcatch\s*\(", code):
                    self.report(path, lineno, "no-throw",
                                "`catch` is banned; use non-throwing APIs "
                                "and propagate Status", raw)

            if re.search(r"\bnew\s+[A-Za-z_:(]", code) and \
                    not re.search(r"\boperator\s+new\b", code):
                self.report(path, lineno, "raw-new",
                            "raw `new`; use std::make_unique/make_shared "
                            "or a container", raw)
            if re.search(r"\bdelete\b\s*(\[\s*\])?\s*[A-Za-z_(*]", code):
                self.report(path, lineno, "raw-new",
                            "raw `delete`; ownership must be RAII-managed",
                            raw)

            if re.search(r"\bstd::rand\b|\bsrand\s*\(", code):
                self.report(path, lineno, "banned-call",
                            "std::rand/srand; use the deterministic "
                            "common/rng.h", raw)
            if re.search(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)", code):
                self.report(path, lineno, "banned-call",
                            "wall-clock seeding makes runs irreproducible; "
                            "use common/rng.h", raw)

            if re.search(r"\busing\s+namespace\b", code):
                self.report(path, lineno, "using-namespace",
                            "`using namespace` at file scope", raw)

            if "INCDB_NO_THREAD_SAFETY_ANALYSIS" in code and \
                    not rel.endswith("common/thread_annotations.h"):
                self.report(path, lineno, "no-tsa-audit",
                            "thread-safety analysis suppressed; justify "
                            "with a comment and lint:allow(no-tsa-audit)",
                            raw)

            if not rel.replace(os.sep, "/").startswith(SIMD_DIR):
                if SIMD_HEADER_RE.search(code):
                    self.report(path, lineno, "simd-isolation",
                                "intrinsic header outside src/simd/; use "
                                "the dispatch table in simd/simd.h", raw)
                elif SIMD_IDENT_RE.search(code):
                    self.report(path, lineno, "simd-isolation",
                                "raw CPU intrinsic outside src/simd/; use "
                                "the dispatch table in simd/simd.h", raw)

            if not rel.replace(os.sep, "/").startswith(NET_DIRS):
                if NET_HEADER_RE.search(code):
                    self.report(path, lineno, "net-isolation",
                                "OS networking header outside src/server/; "
                                "use the wrappers in server/net.h", raw)
                elif NET_IDENT_RE.search(code):
                    self.report(path, lineno, "net-isolation",
                                "raw socket call outside src/server/; use "
                                "the wrappers in server/net.h", raw)

            if in_lib:
                self.check_include(path, lineno, code, raw, rel)

        if in_lib and path.endswith(".h"):
            self.check_header_guard(path, code_lines, rel)

    def check_include(self, path, lineno, code, raw, rel):
        # Detect the directive on the *stripped* line (so commented-out
        # includes stay ignored) but pull the target out of the raw line:
        # the stripper blanks quoted literals, include paths included.
        if not re.match(r"\s*#\s*include\b", code):
            return
        m = re.match(r'\s*#\s*include\s+"([^"]+)"', raw)
        if not m:
            return
        target = m.group(1)
        if rel.replace(os.sep, "/") in SLICER_FILES:
            parts = target.split("/")
            if (len(parts) >= 2 and parts[0] in ALLOWED_HEADER_DEPS and
                    parts[0] not in SLICER_ALLOWED_MODULES and
                    target not in SLICER_ALLOWED_SELF):
                self.report(path, lineno, "slicer-isolation",
                            f"the slicer layer must not include '{target}': "
                            "slot geometry is independent of WAH/encoder "
                            "machinery (only common/ and table/ are below "
                            "it)", raw)
                return
        if target in INTERFACE_HEADERS:
            return  # dependency-inversion seam, see INTERFACE_HEADERS
        parts = target.split("/")
        if len(parts) < 2:
            return  # not a project-module include
        target_module = parts[0]
        if target_module not in ALLOWED_HEADER_DEPS:
            return  # third-party or non-module quoted include
        module = rel.split(os.sep)[1]
        if module not in ALLOWED_HEADER_DEPS:
            return
        allowed = {module} | ALLOWED_HEADER_DEPS[module]
        if path.endswith(".cc"):
            allowed |= ALLOWED_IMPL_EXTRA_DEPS.get(module, set())
        if target_module not in allowed:
            kind = "implementation file" if path.endswith(".cc") else \
                "public header"
            self.report(path, lineno, "layering",
                        f"{kind} of module '{module}' must not include "
                        f"'{target}': '{target_module}' is not below "
                        f"'{module}' in the module DAG", raw)

    def check_header_guard(self, path, code_lines, rel):
        stem = rel[len(LIB_DIR) + 1:]
        expected = "INCDB_" + re.sub(r"[/.]", "_", stem.upper()) + "_"
        for lineno, line in enumerate(code_lines, start=1):
            m = re.match(r"\s*#\s*ifndef\s+(\w+)", line)
            if m:
                if m.group(1) != expected:
                    self.report(path, lineno, "header-guard",
                                f"guard '{m.group(1)}' should be "
                                f"'{expected}'", code_lines[lineno - 1])
                return
            if line.strip() and not line.lstrip().startswith("#"):
                break
        self.report(path, 1, "header-guard",
                    f"missing include guard '{expected}'", "")


def main() -> int:
    linter = Linter()
    scanned = 0
    for top in SCAN_DIRS:
        root = os.path.join(REPO, top)
        if not os.path.isdir(root):
            continue
        for dirpath, _, filenames in os.walk(root):
            for name in sorted(filenames):
                if not name.endswith(CXX_EXTENSIONS):
                    continue
                linter.check_file(os.path.join(dirpath, name))
                scanned += 1
    if linter.findings:
        print(f"tools/lint.py: {len(linter.findings)} finding(s) over "
              f"{scanned} files:", file=sys.stderr)
        for finding in linter.findings:
            print("  " + finding, file=sys.stderr)
        return 1
    print(f"tools/lint.py: OK ({scanned} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
